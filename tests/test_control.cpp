// Tests for the control plane's in-process pieces: the task codec (the one
// serialization shared by the wire protocol and the durable store), the
// versioned TaskRegistry (epoch assignment, error statuses, replay), and
// the RegistryStore (snapshot + journal persistence, crash-mid-append
// recovery, compaction).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "control/registry_store.h"
#include "control/task_codec.h"
#include "control/task_registry.h"

namespace volley {
namespace {

using control::ControlStatus;
using control::RegistryOp;
using control::RegistryOpKind;
using control::RegistryStore;
using control::TaskRecord;
using control::TaskRegistry;

TaskSpec make_spec(double threshold) {
  TaskSpec spec;
  spec.global_threshold = threshold;
  spec.error_allowance = 0.03;
  spec.id_seconds = 2.0;
  spec.max_interval = 25;
  spec.slack_ratio = 0.15;
  spec.patience = 7;
  spec.updating_period = 750;
  spec.estimator.stats_window = 500;
  spec.estimator.stats_warmup = 4;
  spec.estimator.min_observations = 3;
  spec.estimator.bound = ViolationLikelihoodEstimator::Bound::kGaussian;
  return spec;
}

// --- codec ----------------------------------------------------------------

TEST(TaskCodec, SpecRoundTripsEveryField) {
  const TaskSpec in = make_spec(42.5);
  std::vector<std::byte> bytes;
  control::encode_task_spec(bytes, in);

  TaskSpec out;
  std::size_t pos = 0;
  ASSERT_TRUE(control::decode_task_spec(bytes, pos, out));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_TRUE(control::specs_equal(in, out));
  // specs_equal itself must not be trivially true.
  TaskSpec other = in;
  other.patience = in.patience + 1;
  EXPECT_FALSE(control::specs_equal(in, other));
}

TEST(TaskCodec, RecordRoundTripsIdAndEpoch) {
  TaskRecord in;
  in.id = 7;
  in.epoch = 123456789012345ull;
  in.spec = make_spec(10.0);
  const auto bytes = control::encode_record(in);

  TaskRecord out;
  std::size_t pos = 0;
  ASSERT_TRUE(control::decode_task_record(bytes, pos, out));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(out.id, 7u);
  EXPECT_EQ(out.epoch, 123456789012345ull);
  EXPECT_TRUE(control::specs_equal(in.spec, out.spec));
}

TEST(TaskCodec, DecodeRejectsTruncationAtEveryLength) {
  TaskRecord record;
  record.id = 3;
  record.epoch = 9;
  record.spec = make_spec(5.0);
  const auto bytes = control::encode_record(record);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    TaskRecord out;
    std::size_t pos = 0;
    EXPECT_FALSE(control::decode_task_record(
        std::span<const std::byte>(bytes.data(), cut), pos, out))
        << "decoded from a " << cut << "-byte prefix";
  }
}

TEST(TaskCodec, DecodeRejectsInvalidEstimatorBound) {
  std::vector<std::byte> bytes;
  control::encode_task_spec(bytes, make_spec(5.0));
  bytes.back() = std::byte{7};  // bound tag past kGaussian
  TaskSpec out;
  std::size_t pos = 0;
  EXPECT_FALSE(control::decode_task_spec(bytes, pos, out));
}

// --- registry -------------------------------------------------------------

TEST(Registry, AddUpdateRemoveConsumeMonotoneEpochs) {
  TaskRegistry registry;
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_TRUE(registry.empty());

  const auto add = registry.add(1, make_spec(10.0));
  ASSERT_TRUE(add.ok());
  EXPECT_EQ(add.epoch, 1u);
  ASSERT_TRUE(add.op.has_value());
  EXPECT_EQ(add.op->kind, RegistryOpKind::kAdd);
  EXPECT_EQ(add.op->record.epoch, 1u);

  const auto add2 = registry.add(5, make_spec(20.0));
  ASSERT_TRUE(add2.ok());
  EXPECT_EQ(add2.epoch, 2u);

  const auto update = registry.update(1, make_spec(11.0));
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update.epoch, 3u);
  EXPECT_EQ(update.op->kind, RegistryOpKind::kUpdate);
  ASSERT_NE(registry.find(1), nullptr);
  EXPECT_DOUBLE_EQ(registry.find(1)->spec.global_threshold, 11.0);
  EXPECT_EQ(registry.find(1)->epoch, 3u);

  // Removal consumes an epoch too: the version advances past it.
  const auto removed = registry.remove(5);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.epoch, 4u);
  EXPECT_EQ(removed.op->kind, RegistryOpKind::kRemove);
  EXPECT_EQ(registry.find(5), nullptr);
  EXPECT_EQ(registry.version(), 4u);
  EXPECT_EQ(registry.size(), 1u);

  // A re-added id gets a fresh epoch, never its old one.
  const auto readd = registry.add(5, make_spec(20.0));
  ASSERT_TRUE(readd.ok());
  EXPECT_EQ(readd.epoch, 5u);
}

TEST(Registry, MutationErrorsDoNotConsumeEpochs) {
  TaskRegistry registry;
  ASSERT_TRUE(registry.add(1, make_spec(10.0)).ok());

  const auto exists = registry.add(1, make_spec(10.0));
  EXPECT_EQ(exists.status, ControlStatus::kExists);
  EXPECT_FALSE(exists.op.has_value());

  const auto missing = registry.update(9, make_spec(10.0));
  EXPECT_EQ(missing.status, ControlStatus::kNotFound);
  const auto missing_remove = registry.remove(9);
  EXPECT_EQ(missing_remove.status, ControlStatus::kNotFound);

  TaskSpec bad = make_spec(10.0);
  bad.error_allowance = 2.0;  // validate() rejects err outside [0,1]
  const auto invalid = registry.add(2, bad);
  EXPECT_EQ(invalid.status, ControlStatus::kInvalid);
  EXPECT_FALSE(invalid.error.empty());
  const auto invalid_update = registry.update(1, bad);
  EXPECT_EQ(invalid_update.status, ControlStatus::kInvalid);

  // None of the failures advanced the version.
  EXPECT_EQ(registry.version(), 1u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, ListIsAscendingById) {
  TaskRegistry registry;
  ASSERT_TRUE(registry.add(9, make_spec(1.0)).ok());
  ASSERT_TRUE(registry.add(2, make_spec(2.0)).ok());
  ASSERT_TRUE(registry.add(5, make_spec(3.0)).ok());
  const auto records = registry.list();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].id, 2u);
  EXPECT_EQ(records[1].id, 5u);
  EXPECT_EQ(records[2].id, 9u);
}

TEST(Registry, RestoreReplaysOpsVerbatim) {
  // Drive a live registry, capture its ops, replay them into a fresh one:
  // the replica must match exactly — same tasks, same epochs, same version.
  TaskRegistry live;
  std::vector<RegistryOp> ops;
  auto record_op = [&ops](const control::MutationResult& result) {
    ASSERT_TRUE(result.ok());
    ops.push_back(*result.op);
  };
  record_op(live.add(1, make_spec(10.0)));
  record_op(live.add(2, make_spec(20.0)));
  record_op(live.update(1, make_spec(15.0)));
  record_op(live.remove(2));
  record_op(live.add(3, make_spec(30.0)));

  TaskRegistry replica;
  for (const auto& op : ops) replica.restore(op);

  EXPECT_EQ(replica.version(), live.version());
  const auto a = live.list();
  const auto b = replica.list();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    EXPECT_TRUE(control::specs_equal(a[i].spec, b[i].spec));
  }
}

TEST(Registry, ControlStatusNamesAreStable) {
  EXPECT_STREQ(control::control_status_name(ControlStatus::kOk), "ok");
  EXPECT_STREQ(control::control_status_name(ControlStatus::kNotFound),
               "not_found");
  EXPECT_STREQ(control::control_status_name(ControlStatus::kExists),
               "exists");
  EXPECT_STREQ(control::control_status_name(ControlStatus::kInvalid),
               "invalid");
}

// --- durable store --------------------------------------------------------

class RegistryStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "volley_registry_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  void TearDown() override {
    std::remove((base_ + ".snapshot").c_str());
    std::remove((base_ + ".snapshot.tmp").c_str());
    std::remove((base_ + ".journal").c_str());
  }

  /// Journals an applied mutation through `store` — the second half of the
  /// coordinator's mutate-then-append sequence.
  static void apply(RegistryStore& store,
                    const control::MutationResult& result) {
    ASSERT_TRUE(result.ok()) << result.error;
    store.append(*result.op);
  }

  static void expect_same(const TaskRegistry& a, const TaskRegistry& b) {
    EXPECT_EQ(a.version(), b.version());
    const auto la = a.list();
    const auto lb = b.list();
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].id, lb[i].id);
      EXPECT_EQ(la[i].epoch, lb[i].epoch);
      EXPECT_TRUE(control::specs_equal(la[i].spec, lb[i].spec));
    }
  }

  std::string base_;
};

TEST_F(RegistryStoreTest, LoadOnEmptyPathIsCleanNoop) {
  TaskRegistry registry;
  RegistryStore store(base_);
  const auto stats = store.load(registry);
  EXPECT_FALSE(stats.had_snapshot);
  EXPECT_EQ(stats.journal_ops, 0u);
  EXPECT_TRUE(stats.journal_clean);
  EXPECT_TRUE(registry.empty());
}

TEST_F(RegistryStoreTest, JournalReplayRestoresExactEpochs) {
  TaskRegistry original;
  {
    RegistryStore store(base_);
    apply(store, original.add(1, make_spec(10.0)));
    apply(store, original.add(2, make_spec(20.0)));
    apply(store, original.update(2, make_spec(25.0)));
    apply(store, original.remove(1));
  }  // "crash": the store goes away without compacting

  TaskRegistry restored;
  RegistryStore reopened(base_);
  const auto stats = reopened.load(restored);
  EXPECT_FALSE(stats.had_snapshot);
  EXPECT_EQ(stats.journal_ops, 4u);
  EXPECT_TRUE(stats.journal_clean);
  expect_same(original, restored);
  ASSERT_NE(restored.find(2), nullptr);
  EXPECT_EQ(restored.find(2)->epoch, 3u);  // the update's epoch, verbatim
  EXPECT_EQ(restored.version(), 4u);       // covers the removal epoch too
}

TEST_F(RegistryStoreTest, SnapshotPlusJournalCompose) {
  TaskRegistry original;
  {
    RegistryStore store(base_);
    apply(store, original.add(1, make_spec(10.0)));
    apply(store, original.add(2, make_spec(20.0)));
    store.compact(original);  // folds both adds into the snapshot
    EXPECT_EQ(store.journal_ops_since_compact(), 0u);
    apply(store, original.update(1, make_spec(12.0)));
    apply(store, original.add(3, make_spec(30.0)));
  }

  TaskRegistry restored;
  RegistryStore reopened(base_);
  const auto stats = reopened.load(restored);
  EXPECT_TRUE(stats.had_snapshot);
  EXPECT_EQ(stats.snapshot_tasks, 2u);
  EXPECT_EQ(stats.journal_ops, 2u);  // only the post-compact ops replay
  EXPECT_TRUE(stats.journal_clean);
  expect_same(original, restored);
}

TEST_F(RegistryStoreTest, CrashMidJournalAppendLosesOnlyTheTornOp) {
  TaskRegistry original;
  std::uint64_t version_before_last = 0;
  {
    RegistryStore store(base_);
    apply(store, original.add(1, make_spec(10.0)));
    apply(store, original.add(2, make_spec(20.0)));
    version_before_last = original.version();
    apply(store, original.update(2, make_spec(25.0)));
  }

  // Simulate a crash mid-append: cut into the last record's bytes.
  const auto journal = base_ + ".journal";
  const auto full = std::filesystem::file_size(journal);
  std::filesystem::resize_file(journal, full - 7);

  TaskRegistry restored;
  RegistryStore reopened(base_);
  const auto stats = reopened.load(restored);
  EXPECT_FALSE(stats.journal_clean);   // the torn tail was detected...
  EXPECT_EQ(stats.journal_ops, 2u);    // ...and the valid prefix replayed
  EXPECT_EQ(restored.version(), version_before_last);
  ASSERT_NE(restored.find(2), nullptr);
  EXPECT_EQ(restored.find(2)->epoch, 2u);  // pre-update revision
  EXPECT_DOUBLE_EQ(restored.find(2)->spec.global_threshold, 20.0);

  // load() re-snapshots the recovered state, so a second restart is clean
  // and can never re-read the torn tail.
  TaskRegistry again;
  RegistryStore third(base_);
  const auto stats2 = third.load(again);
  EXPECT_TRUE(stats2.had_snapshot);
  EXPECT_TRUE(stats2.journal_clean);
  EXPECT_EQ(stats2.journal_ops, 0u);
  expect_same(restored, again);
}

TEST_F(RegistryStoreTest, CorruptJournalRecordStopsReplayAtThatRecord) {
  TaskRegistry original;
  {
    RegistryStore store(base_);
    apply(store, original.add(1, make_spec(10.0)));
    apply(store, original.add(2, make_spec(20.0)));
    apply(store, original.add(3, make_spec(30.0)));
  }

  // Flip one byte inside the *second* record's body: replay must keep op 1,
  // reject op 2 on CRC, and never reach op 3.
  const auto journal = base_ + ".journal";
  const auto size = std::filesystem::file_size(journal);
  const auto record = (size - 8) / 3;  // 3 equal-size records after header
  {
    std::fstream f(journal,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(8 + record + record / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x01;
    f.seekp(static_cast<std::streamoff>(8 + record + record / 2));
    f.write(&byte, 1);
  }

  TaskRegistry restored;
  RegistryStore reopened(base_);
  const auto stats = reopened.load(restored);
  EXPECT_FALSE(stats.journal_clean);
  EXPECT_EQ(stats.journal_ops, 1u);
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_NE(restored.find(1), nullptr);
}

TEST_F(RegistryStoreTest, BadMagicThrows) {
  {
    std::ofstream f(base_ + ".journal", std::ios::binary);
    f << "this is not a registry journal";
  }
  TaskRegistry registry;
  RegistryStore store(base_);
  EXPECT_THROW(store.load(registry), std::runtime_error);
}

TEST_F(RegistryStoreTest, MaybeCompactTriggersPastThreshold) {
  TaskRegistry registry;
  RegistryStore store(base_);
  ASSERT_TRUE(registry.add(1, make_spec(10.0)).ok());
  // Journal churn: flip the task's spec until the threshold trips.
  for (std::size_t i = 0; i <= RegistryStore::kCompactThreshold; ++i) {
    const auto result =
        registry.update(1, make_spec(10.0 + static_cast<double>(i)));
    ASSERT_TRUE(result.ok());
    store.append(*result.op);
    store.maybe_compact(registry);
  }
  // The journal was folded into the snapshot and restarted from zero.
  EXPECT_LT(store.journal_ops_since_compact(),
            RegistryStore::kCompactThreshold);
  EXPECT_TRUE(std::filesystem::exists(base_ + ".snapshot"));

  TaskRegistry restored;
  RegistryStore reopened(base_);
  const auto stats = reopened.load(restored);
  EXPECT_TRUE(stats.had_snapshot);
  EXPECT_TRUE(stats.journal_clean);
  expect_same(registry, restored);
}

}  // namespace
}  // namespace volley
