// Unit tests for the monitor-level adaptation rule (paper Section III-B):
// additive increase after p safe checks, immediate reset on beta > err,
// slack band behaviour, Im cap, and the r_i / e_i coordination statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/adaptive_sampler.h"
#include "obs/metrics.h"

namespace volley {
namespace {

AdaptiveSamplerOptions quiet_options() {
  AdaptiveSamplerOptions o;
  o.error_allowance = 0.05;
  o.slack_ratio = 0.2;
  o.patience = 5;
  o.max_interval = 10;
  return o;
}

TEST(AdaptiveSamplerOptions, Validation) {
  AdaptiveSamplerOptions o;
  o.error_allowance = 1.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = AdaptiveSamplerOptions{};
  o.slack_ratio = 1.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = AdaptiveSamplerOptions{};
  o.patience = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = AdaptiveSamplerOptions{};
  o.max_interval = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(AdaptiveSampler, StartsAtDefaultInterval) {
  AdaptiveSampler sampler(quiet_options(), 100.0);
  EXPECT_EQ(sampler.interval(), 1);
  EXPECT_DOUBLE_EQ(sampler.last_beta(), 1.0);
}

TEST(AdaptiveSampler, GrowsAfterPatienceSafeChecks) {
  auto options = quiet_options();
  options.patience = 5;
  AdaptiveSampler sampler(options, 1000.0);
  // A flat series far below the threshold: beta ~ 0 once stats exist.
  Tick interval = 1;
  int observes_at_growth = -1;
  for (int i = 0; i < 40; ++i) {
    interval = sampler.observe(1.0 + 0.001 * (i % 2), 1);
    if (interval == 2 && observes_at_growth < 0) observes_at_growth = i;
  }
  ASSERT_GT(observes_at_growth, 0);
  // Growth requires at least `patience` consecutive safe checks (plus the
  // cold-start observations before statistics exist).
  EXPECT_GE(observes_at_growth, 5);
  EXPECT_GT(interval, 1);
}

TEST(AdaptiveSampler, CapsAtMaxInterval) {
  auto options = quiet_options();
  options.patience = 1;
  options.max_interval = 4;
  AdaptiveSampler sampler(options, 1e9);
  for (int i = 0; i < 200; ++i) sampler.observe(0.0, sampler.interval());
  EXPECT_EQ(sampler.interval(), 4);
}

TEST(AdaptiveSampler, ResetsToDefaultOnDanger) {
  auto options = quiet_options();
  options.patience = 1;
  AdaptiveSampler sampler(options, 100.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) sampler.observe(rng.normal(1.0, 0.1), 1);
  ASSERT_GT(sampler.interval(), 1);
  // A jump right next to the threshold: beta -> 1 > err -> immediate reset.
  sampler.observe(99.9, sampler.interval());
  EXPECT_EQ(sampler.interval(), 1);
  EXPECT_EQ(sampler.safe_streak(), 0);
}

TEST(AdaptiveSampler, SlackBandClearsStreakWithoutReset) {
  // Observations whose beta lands inside ((1-gamma)err, err] are acceptable
  // (no reset) but risky to grow from: the safe streak must clear.
  AdaptiveSamplerOptions options;
  options.error_allowance = 0.05;
  options.slack_ratio = 0.2;
  options.patience = 1000;  // growth disabled; isolates streak behaviour
  options.max_interval = 10;
  // Threshold ~4.5 sigma above the mean puts beta(1) near the band for a
  // noticeable fraction of N(0,1) draws.
  AdaptiveSampler sampler(options, 4.5);
  Rng rng(5);
  int band_hits = 0;
  int streak_growth_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    sampler.observe(rng.normal(0.0, 1.0), 1);
    const double beta = sampler.last_beta();
    const double err = options.error_allowance;
    if (beta > (1.0 - options.slack_ratio) * err && beta <= err) {
      ++band_hits;
      EXPECT_EQ(sampler.safe_streak(), 0);  // band entry clears the streak
    } else if (beta <= (1.0 - options.slack_ratio) * err) {
      if (sampler.safe_streak() > 0) ++streak_growth_hits;
    }
  }
  EXPECT_GT(band_hits, 0);           // the band was actually exercised
  EXPECT_GT(streak_growth_hits, 0);  // and safe observations accumulate
}

TEST(AdaptiveSampler, ZeroAllowanceNeverGrows) {
  auto options = quiet_options();
  options.error_allowance = 0.0;
  options.patience = 1;
  AdaptiveSampler sampler(options, 1e12);
  for (int i = 0; i < 100; ++i) sampler.observe(0.0, 1);
  // beta is 0 for a constant series far below T... but growth needs
  // beta <= (1-gamma)*0 = 0, which a zero beta satisfies; the paper's
  // err = 0 case degenerates to periodic sampling only when beta > 0.
  // With a strictly constant series beta == 0, growth is permitted.
  // Feed a noisy series instead: beta > 0 -> beta > err -> stays at 1.
  AdaptiveSampler noisy(options, 10.0);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) noisy.observe(rng.normal(0.0, 1.0), 1);
  EXPECT_EQ(noisy.interval(), 1);
}

TEST(AdaptiveSampler, CostReductionGainMatchesFormula) {
  auto options = quiet_options();
  options.patience = 1;
  options.max_interval = 5;
  AdaptiveSampler sampler(options, 1e9);
  EXPECT_NEAR(sampler.cost_reduction_gain(), 1.0 - 0.5, 1e-12);  // I=1
  for (int i = 0; i < 300; ++i) sampler.observe(0.0, sampler.interval());
  EXPECT_EQ(sampler.interval(), 5);
  EXPECT_DOUBLE_EQ(sampler.cost_reduction_gain(), 0.0);  // pinned at Im
}

TEST(AdaptiveSampler, AllowanceToGrowInvertsIncreaseRule) {
  auto options = quiet_options();
  AdaptiveSampler sampler(options, 50.0);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) sampler.observe(rng.normal(40.0, 2.0), 1);
  const double beta = sampler.last_beta();
  EXPECT_NEAR(sampler.allowance_to_grow(), beta / (1.0 - options.slack_ratio),
              1e-12);
}

TEST(AdaptiveSampler, SetErrorAllowanceValidates) {
  AdaptiveSampler sampler(quiet_options(), 10.0);
  EXPECT_THROW(sampler.set_error_allowance(-0.1), std::invalid_argument);
  EXPECT_THROW(sampler.set_error_allowance(1.1), std::invalid_argument);
  sampler.set_error_allowance(0.2);
  EXPECT_DOUBLE_EQ(sampler.error_allowance(), 0.2);
}

TEST(AdaptiveSampler, LargerAllowanceGrowsFasterOrFurther) {
  auto small_opt = quiet_options();
  small_opt.error_allowance = 0.001;
  auto large_opt = quiet_options();
  large_opt.error_allowance = 0.1;
  AdaptiveSampler small(small_opt, 10.0), large(large_opt, 10.0);
  Rng rng_a(13), rng_b(13);
  for (int i = 0; i < 400; ++i) {
    small.observe(rng_a.normal(0.0, 1.0), small.interval());
    large.observe(rng_b.normal(0.0, 1.0), large.interval());
  }
  EXPECT_GE(large.interval(), small.interval());
}

TEST(AdaptiveSampler, ResetRestoresInitialState) {
  auto options = quiet_options();
  options.patience = 1;
  AdaptiveSampler sampler(options, 1e9);
  for (int i = 0; i < 50; ++i) sampler.observe(0.0, sampler.interval());
  ASSERT_GT(sampler.interval(), 1);
  sampler.reset();
  EXPECT_EQ(sampler.interval(), 1);
  EXPECT_DOUBLE_EQ(sampler.last_beta(), 1.0);
  EXPECT_EQ(sampler.safe_streak(), 0);
}

TEST(AdaptiveSampler, StreakBrokenByBandEntry) {
  // A safe streak interrupted by one slack-band observation restarts.
  auto options = quiet_options();
  options.patience = 3;
  AdaptiveSampler sampler(options, 100.0);
  Rng rng(17);
  // Warm up statistics with safe values.
  for (int i = 0; i < 10; ++i) sampler.observe(rng.normal(0.0, 0.5), 1);
  const int streak_before = sampler.safe_streak();
  // One observation very near the threshold lands beta above err -> reset,
  // or inside the band -> streak cleared; either way streak drops to 0.
  sampler.observe(99.0, 1);
  EXPECT_EQ(sampler.safe_streak(), 0);
  (void)streak_before;
}

TEST(AdaptiveSampler, ExposesMaxInterval) {
  auto options = quiet_options();
  options.max_interval = 23;
  AdaptiveSampler sampler(options, 100.0);
  EXPECT_EQ(sampler.max_interval(), 23);
}

TEST(AdaptiveSampler, IntervalHistogramBoundTracksMaxInterval) {
  // Regression: volley_sampler_interval_ticks was hard-capped at 64, so a
  // configuration with Im > 64 funneled every chosen interval into the
  // overflow bucket. The bound is now derived from Im at first registration
  // (rounded up to a multiple of 64 so small-Im runs keep the legacy shape
  // and stay merge-compatible).
  {
    obs::MetricsRegistry registry;
    obs::ScopedMetricsRegistry scope(registry);
    auto options = quiet_options();
    options.max_interval = 100;
    AdaptiveSampler sampler(options, 1000.0);
    for (int i = 0; i < 5; ++i) sampler.observe(1.0, 1);
    const auto snap =
        registry.histogram("volley_sampler_interval_ticks", 0.0, 1.0, 1)
            .snapshot();
    // Im = 100 -> bound 128 with unit-width bins; interval 100 is in range.
    EXPECT_EQ(snap.bins(), 128u);
    EXPECT_DOUBLE_EQ(snap.bin_hi(snap.bins() - 1), 128.0);
    EXPECT_EQ(snap.overflow(), 0);
    EXPECT_EQ(snap.count(), 5);
  }
  {
    // Im <= 63 keeps the legacy 0-64x64 shape exactly.
    obs::MetricsRegistry registry;
    obs::ScopedMetricsRegistry scope(registry);
    AdaptiveSampler sampler(quiet_options(), 1000.0);  // Im = 10
    sampler.observe(1.0, 1);
    const auto snap =
        registry.histogram("volley_sampler_interval_ticks", 0.0, 1.0, 1)
            .snapshot();
    EXPECT_EQ(snap.bins(), 64u);
    EXPECT_DOUBLE_EQ(snap.bin_hi(snap.bins() - 1), 64.0);
  }
}

}  // namespace
}  // namespace volley
