// Unit tests for the netflow-like traffic substrate and the DDoS injector:
// determinism, rho statistics (near-zero mean, volume-scaled variance,
// diurnal stability at night), Zipf popularity of VMs, attack shape.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/online_stats.h"
#include "trace/ddos.h"
#include "trace/netflow.h"

namespace volley {
namespace {

NetflowOptions small_options() {
  NetflowOptions o;
  o.vms = 8;
  o.ticks = 1440;
  o.ticks_per_day = 1440;
  o.diurnal_phase = 720;
  o.mean_flows_per_tick = 40.0;
  o.seed = 101;
  return o;
}

TEST(NetflowOptions, Validation) {
  auto o = small_options();
  o.vms = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_options();
  o.reply_ratio = 1.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_options();
  o.syn_prob = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(Netflow, GeneratesAllVmsAndTicks) {
  NetflowGenerator gen(small_options());
  const auto traffic = gen.generate();
  ASSERT_EQ(traffic.size(), 8u);
  for (const auto& vm : traffic) {
    EXPECT_EQ(vm.rho.ticks(), 1440);
    EXPECT_EQ(vm.in_packets.ticks(), 1440);
  }
}

TEST(Netflow, IsDeterministicPerSeed) {
  NetflowGenerator a(small_options()), b(small_options());
  const auto ta = a.generate();
  const auto tb = b.generate();
  for (std::size_t v = 0; v < ta.size(); ++v) {
    for (std::size_t t = 0; t < ta[v].rho.size(); t += 97) {
      EXPECT_DOUBLE_EQ(ta[v].rho[t], tb[v].rho[t]);
    }
  }
  auto other = small_options();
  other.seed = 999;
  const auto tc = NetflowGenerator(other).generate();
  int diffs = 0;
  for (std::size_t t = 0; t < ta[0].rho.size(); ++t) {
    if (ta[0].rho[t] != tc[0].rho[t]) ++diffs;
  }
  EXPECT_GT(diffs, 100);
}

TEST(Netflow, RhoMeanNearZeroRelativeToVolume) {
  // Benign rho = Binom(in,p) - Binom(out,p) with out ~ 0.97*in: the mean is
  // a small positive fraction of the SYN volume.
  NetflowGenerator gen(small_options());
  const auto traffic = gen.generate();
  for (const auto& vm : traffic) {
    OnlineStats rho_stats, pkt_stats;
    for (std::size_t t = 0; t < vm.rho.size(); ++t) {
      rho_stats.add(vm.rho[t]);
      pkt_stats.add(vm.in_packets[t]);
    }
    const double syn_volume = 0.1 * pkt_stats.mean();
    EXPECT_LT(std::abs(rho_stats.mean()), 0.2 * syn_volume + 1.0);
  }
}

TEST(Netflow, NightTrafficIsCalmerThanPeak) {
  // The Figure 5(a)/6 mechanism: low night volume -> low rho variance ->
  // long intervals. Peak is at diurnal_phase; night is half a day away.
  auto o = small_options();
  o.ticks = 2880;  // two days for a fair windowed comparison
  NetflowGenerator gen(o);
  const auto traffic = gen.generate();
  const auto& vm = traffic[0];  // most popular VM: highest volume contrast
  OnlineStats peak, night;
  for (Tick t = 0; t < o.ticks; ++t) {
    const Tick day_pos = t % o.ticks_per_day;
    const auto i = static_cast<std::size_t>(t);
    if (std::abs(static_cast<double>(day_pos - o.diurnal_phase)) < 120) {
      peak.add(vm.rho[i]);
    } else if (day_pos < 120 || day_pos > o.ticks_per_day - 120) {
      night.add(vm.rho[i]);
    }
  }
  EXPECT_LT(night.stddev(), peak.stddev());
}

TEST(Netflow, PopularVmGetsMoreTraffic) {
  NetflowGenerator gen(small_options());
  const auto traffic = gen.generate();
  const double first = traffic[0].in_packets.mean();
  const double last = traffic[7].in_packets.mean();
  EXPECT_GT(first, 2.0 * last);  // Zipf skew 1.0 over 8 ranks
}

TEST(Netflow, FlowRateFollowsZipfAndDiurnal) {
  auto o = small_options();
  NetflowGenerator gen(o);
  // Zipf: rate of VM 0 > VM 7 at the same tick.
  EXPECT_GT(gen.flow_rate(0, 0), gen.flow_rate(0, 7));
  // Diurnal: rate at peak > rate at night for the same VM.
  EXPECT_GT(gen.flow_rate(o.diurnal_phase, 0), gen.flow_rate(0, 0));
  EXPECT_THROW(gen.flow_rate(0, 99), std::out_of_range);
}

TEST(Netflow, SynthesizedWindowMatchesRateScale) {
  auto o = small_options();
  NetflowGenerator gen(o);
  Rng rng(5);
  double total_flows = 0;
  const int windows = 200;
  for (int w = 0; w < windows; ++w) {
    const auto records = gen.synthesize_window(o.diurnal_phase, 0, rng);
    total_flows += static_cast<double>(records.size());
    for (const auto& rec : records) {
      EXPECT_EQ(rec.dst_vm, 0u);
      EXPECT_GE(rec.packets, 1);
      EXPECT_GE(rec.bytes, rec.packets);  // bytes/packet >= 1
      EXPECT_LE(rec.syn_packets, rec.packets);
    }
  }
  const double mean_flows = total_flows / windows;
  EXPECT_NEAR(mean_flows, gen.flow_rate(o.diurnal_phase, 0),
              0.2 * gen.flow_rate(o.diurnal_phase, 0));
}

TEST(Ddos, EpisodeValidation) {
  DdosEpisode e;
  e.peak_syn_rate = 0.0;
  EXPECT_THROW(e.validate(), std::invalid_argument);
  e = DdosEpisode{};
  e.response_collapse = 1.5;
  EXPECT_THROW(e.validate(), std::invalid_argument);
  e = DdosEpisode{};
  e.ramp = e.plateau = e.decay = 0;
  EXPECT_THROW(e.validate(), std::invalid_argument);
}

TEST(Ddos, InjectionRaisesRhoDuringEpisode) {
  VmTraffic vm;
  vm.rho = TimeSeries(200, 0.0);
  vm.in_packets = TimeSeries(200, 100.0);
  DdosEpisode episode;
  episode.start = 50;
  episode.ramp = 5;
  episode.plateau = 10;
  episode.decay = 5;
  episode.peak_syn_rate = 1000.0;
  episode.response_collapse = 0.9;
  Rng rng(7);
  inject_ddos(vm, episode, rng);
  // Outside the episode rho is untouched.
  EXPECT_DOUBLE_EQ(vm.rho[10], 0.0);
  EXPECT_DOUBLE_EQ(vm.rho[120], 0.0);
  // At the plateau rho is near peak * collapse.
  double plateau_max = 0.0;
  for (Tick t = 55; t < 65; ++t) {
    plateau_max = std::max(plateau_max,
                           vm.rho[static_cast<std::size_t>(t)]);
  }
  EXPECT_NEAR(plateau_max, 900.0, 200.0);
  // Attack packets add inspection cost.
  EXPECT_GT(vm.in_packets[60], 100.0);
}

TEST(Ddos, TruncatesAtTraceEnd) {
  VmTraffic vm;
  vm.rho = TimeSeries(100, 0.0);
  vm.in_packets = TimeSeries(100, 0.0);
  DdosEpisode episode;
  episode.start = 95;
  episode.ramp = 2;
  episode.plateau = 10;
  episode.decay = 2;
  Rng rng(9);
  EXPECT_NO_THROW(inject_ddos(vm, episode, rng));  // no out-of-range write
}

TEST(Ddos, PlaceEpisodesAreSortedAndDisjoint) {
  DdosEpisode proto;
  proto.ramp = 4;
  proto.plateau = 8;
  proto.decay = 4;
  Rng rng(11);
  const auto placed = place_episodes(2000, proto, 10, rng);
  EXPECT_EQ(placed.size(), 10u);
  for (std::size_t i = 1; i < placed.size(); ++i) {
    EXPECT_GE(placed[i].start, placed[i - 1].start + placed[i - 1].length());
  }
}

TEST(Ddos, PlaceEpisodesGivesUpGracefullyWhenCrowded) {
  DdosEpisode proto;
  proto.ramp = 10;
  proto.plateau = 30;
  proto.decay = 10;
  Rng rng(13);
  // 100 episodes of length 50 cannot fit in 300 ticks; expect fewer.
  const auto placed = place_episodes(300, proto, 100, rng);
  EXPECT_LT(placed.size(), 100u);
  EXPECT_GE(placed.size(), 1u);
}

TEST(Ddos, PlaceEpisodesRejectsTooShortTrace) {
  DdosEpisode proto;
  Rng rng(15);
  EXPECT_THROW(place_episodes(proto.length() - 1, proto, 1, rng),
               std::invalid_argument);
}

TEST(Ddos, AttackIsDetectableAboveBenignPercentile) {
  // End-to-end: after injection, the attack ticks dominate the top
  // percentile of rho — the property the selectivity-based thresholds use.
  auto o = small_options();
  NetflowGenerator gen(o);
  auto traffic = gen.generate();
  auto& vm = traffic[3];
  const double benign_p999 = vm.rho.threshold_for_selectivity(0.1);
  DdosEpisode episode;
  episode.start = 700;
  episode.peak_syn_rate = std::max(2000.0, benign_p999 * 50);
  episode.response_collapse = 0.9;
  Rng rng(17);
  inject_ddos(vm, episode, rng);
  double attack_peak = 0.0;
  for (Tick t = episode.start; t < episode.start + episode.length(); ++t) {
    attack_peak = std::max(attack_peak, vm.rho[static_cast<std::size_t>(t)]);
  }
  EXPECT_GT(attack_peak, benign_p999);
}

}  // namespace
}  // namespace volley
