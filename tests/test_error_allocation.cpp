// Unit tests for the task-level error-allowance allocation (Section IV-B):
// even split, yield-proportional adaptive split, minimum-assignment floor,
// uniformity throttle and the clamp-and-normalize helper.
#include <gtest/gtest.h>

#include <numeric>

#include "core/error_allocation.h"

namespace volley {
namespace {

CoordStats stats(double gain, double allowance) {
  CoordStats s;
  s.avg_gain = gain;
  s.avg_allowance = allowance;
  s.observations = 10;
  return s;
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(EvenAllocation, SplitsUniformly) {
  EvenAllocation even;
  const std::vector<double> current{0.01, 0.02, 0.03};
  const std::vector<CoordStats> s{stats(1, 1), stats(2, 1), stats(3, 1)};
  const auto out = even.allocate(0.06, current, s);
  ASSERT_EQ(out.size(), 3u);
  for (double e : out) EXPECT_NEAR(e, 0.02, 1e-12);
}

TEST(EvenAllocation, RejectsEmpty) {
  EvenAllocation even;
  EXPECT_THROW(even.allocate(0.1, {}, {}), std::invalid_argument);
}

TEST(AdaptiveAllocation, FavorsHighYieldMonitors) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.005, 0.005};
  // Monitor 0: high gain, low required allowance -> high yield.
  const std::vector<CoordStats> s{stats(0.5, 0.001), stats(0.1, 0.01)};
  const auto out = adaptive.allocate(0.01, current, s);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_GT(out[0], out[1]);
  EXPECT_NEAR(sum(out), 0.01, 1e-9);
}

TEST(AdaptiveAllocation, ConvergesToProportionalFixedPoint) {
  AdaptiveAllocation adaptive;
  // Yields 100 and 50: the damped iteration must converge to a 2:1 split
  // (the fixed point of the paper's proportional rule; floor not binding).
  const std::vector<CoordStats> s{stats(0.1, 0.001), stats(0.05, 0.001)};
  std::vector<double> alloc{0.01, 0.01};
  for (int i = 0; i < 100; ++i) alloc = adaptive.allocate(0.02, alloc, s);
  EXPECT_NEAR(alloc[0] / alloc[1], 2.0, 1e-3);
}

TEST(AdaptiveAllocation, SingleStepIsDamped) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.01, 0.01};
  const std::vector<CoordStats> s{stats(0.1, 0.001), stats(0.05, 0.001)};
  const auto out = adaptive.allocate(0.02, current, s);
  // Moves toward the 2:1 target but not all the way (default smoothing).
  EXPECT_GT(out[0], 0.01);
  EXPECT_LT(out[0], 0.02 * 2.0 / 3.0);
}

TEST(AdaptiveAllocation, RespectsMinimumFloor) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.005, 0.005};
  // Monitor 1 has essentially zero yield; it must still keep err/100.
  const std::vector<CoordStats> s{stats(0.5, 0.001), stats(0.0, 0.01)};
  const auto out = adaptive.allocate(0.01, current, s);
  EXPECT_GE(out[1], 0.01 * 0.01 - 1e-12);
  EXPECT_NEAR(sum(out), 0.01, 1e-9);
}

TEST(AdaptiveAllocation, UniformYieldsKeepCurrentAllocation) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.007, 0.003};
  // Yields within 10% of each other -> throttle: no churn.
  const std::vector<CoordStats> s{stats(0.10, 0.001), stats(0.104, 0.001)};
  const auto out = adaptive.allocate(0.01, current, s);
  EXPECT_DOUBLE_EQ(out[0], 0.007);
  EXPECT_DOUBLE_EQ(out[1], 0.003);
}

TEST(AdaptiveAllocation, NoGrowableMonitorKeepsAllocation) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.004, 0.006};
  // Both pinned at Im: gain 0 -> nothing to optimize.
  const std::vector<CoordStats> s{stats(0.0, 0.01), stats(0.0, 0.02)};
  const auto out = adaptive.allocate(0.01, current, s);
  EXPECT_DOUBLE_EQ(out[0], 0.004);
  EXPECT_DOUBLE_EQ(out[1], 0.006);
}

TEST(AdaptiveAllocation, SingleMonitorGetsEverything) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.01};
  const std::vector<CoordStats> s{stats(0.5, 0.001)};
  const auto out = adaptive.allocate(0.01, current, s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 0.01);
}

TEST(AdaptiveAllocation, ZeroAllowanceNeededIsHandled) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.005, 0.005};
  // e_i == 0 (beta == 0): the epsilon floor avoids division by zero and the
  // monitor gets a huge but finite yield.
  const std::vector<CoordStats> s{stats(0.5, 0.0), stats(0.1, 0.01)};
  const auto out = adaptive.allocate(0.01, current, s);
  EXPECT_GT(out[0], out[1]);
  EXPECT_NEAR(sum(out), 0.01, 1e-9);
}

TEST(AdaptiveAllocation, SizeMismatchThrows) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.01};
  const std::vector<CoordStats> s{stats(1, 1), stats(1, 1)};
  EXPECT_THROW(adaptive.allocate(0.01, current, s), std::invalid_argument);
}

TEST(AdaptiveAllocation, OptionsValidated) {
  AdaptiveAllocation::Options bad;
  bad.min_fraction = -0.1;
  EXPECT_THROW(AdaptiveAllocation{bad}, std::invalid_argument);
  bad = AdaptiveAllocation::Options{};
  bad.min_fraction = 0.6;  // two monitors could not both get 0.6*err
  EXPECT_THROW(AdaptiveAllocation{bad}, std::invalid_argument);
}

TEST(ClampAndNormalize, RaisesFloorsAndKeepsTotal) {
  auto out = clamp_and_normalize({0.9, 0.1, 0.0}, 1.0, 0.05);
  EXPECT_NEAR(sum(out), 1.0, 1e-9);
  for (double v : out) EXPECT_GE(v, 0.05 - 1e-9);
  // Ordering preserved.
  EXPECT_GT(out[0], out[1]);
  EXPECT_GE(out[1], out[2]);
}

TEST(ClampAndNormalize, InfeasibleFloorThrows) {
  EXPECT_THROW(clamp_and_normalize({0.5, 0.5}, 1.0, 0.6),
               std::invalid_argument);
}

TEST(ClampAndNormalize, AllZeroFallsBackToEven) {
  const auto out = clamp_and_normalize({0.0, 0.0, 0.0, 0.0}, 1.0, 0.0);
  for (double v : out) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(ClampAndNormalize, NoopWhenAlreadyFeasible) {
  const auto out = clamp_and_normalize({0.6, 0.4}, 1.0, 0.1);
  EXPECT_NEAR(out[0], 0.6, 1e-9);
  EXPECT_NEAR(out[1], 0.4, 1e-9);
}

TEST(RedistributeAllowance, ReclaimsDeadShareForSurvivors) {
  const std::vector<double> current{0.01, 0.01, 0.01};
  const std::vector<std::size_t> excluded{0};
  const auto out = redistribute_allowance(0.03, current, excluded);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_NEAR(out[1], 0.015, 1e-12);
  EXPECT_NEAR(out[2], 0.015, 1e-12);
}

TEST(RedistributeAllowance, KeepsSurvivorProportionsAndFloor) {
  const std::vector<double> current{0.01, 0.018, 0.0, 0.002};
  const std::vector<std::size_t> excluded{0};
  const auto out = redistribute_allowance(0.03, current, excluded);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_NEAR(sum(out), 0.03, 1e-9);
  // Survivor proportions are nearly preserved (0.018 : 0.002 = 9 : 1; the
  // floor clamp rescales only the above-floor mass, so the ratio shifts by
  // a fraction of a percent)...
  EXPECT_NEAR(out[1] / out[3], 9.0, 0.05);
  // ...and the zero-share survivor is lifted to the err/100 floor.
  EXPECT_GE(out[2], 0.03 * 0.01 - 1e-12);
}

TEST(RedistributeAllowance, AllZeroSurvivorsSplitEvenly) {
  const std::vector<double> current{0.03, 0.0, 0.0};
  const std::vector<std::size_t> excluded{0};
  const auto out = redistribute_allowance(0.03, current, excluded);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_NEAR(out[1], 0.015, 1e-12);
  EXPECT_NEAR(out[2], 0.015, 1e-12);
}

TEST(RedistributeAllowance, AllExcludedYieldsZeros) {
  const std::vector<double> current{0.01, 0.02};
  const std::vector<std::size_t> excluded{0, 1};
  const auto out = redistribute_allowance(0.03, current, excluded);
  ASSERT_EQ(out.size(), 2u);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RedistributeAllowance, NoExclusionRenormalizes) {
  // A rejoin after a death leaves the vector summing below err; with no
  // exclusions the call simply rescales everyone back onto the budget.
  const std::vector<double> current{0.01, 0.005};
  const auto out = redistribute_allowance(0.03, current, {});
  EXPECT_NEAR(sum(out), 0.03, 1e-9);
  EXPECT_NEAR(out[0] / out[1], 2.0, 1e-9);
}

// The paper's worked example (Section IV-B): moving allowance toward the
// monitor that can absorb frequent violations increases total cost
// reduction — the allocator must push allowance toward higher yield until
// the marginal yields equalize. We verify the direction of the first step.
TEST(AdaptiveAllocation, PaperExampleDirection) {
  AdaptiveAllocation adaptive;
  // Monitor 1 at I=4 (gain 1/4-1/5=0.05) needs little allowance; monitor 2
  // at I=1 (gain 1/1-1/2=0.5) needs more but yields more per unit.
  const std::vector<double> current{0.005, 0.005};
  const std::vector<CoordStats> s{stats(0.05, 0.004), stats(0.5, 0.008)};
  // Yields: 12.5 vs 62.5 -> monitor 2 receives the larger share.
  const auto out = adaptive.allocate(0.01, current, s);
  EXPECT_GT(out[1], out[0]);
}

// The uniformity throttle, pinned exactly as implemented (and documented in
// the header): skip iff min_y > 0 and max_y / min_y - 1 < uniformity_band.
// A skipped round returns `current` verbatim, which is how these tests
// observe it.
TEST(AdaptiveAllocation, SkipsWhenYieldRatioInsideBand) {
  AdaptiveAllocation adaptive;  // uniformity_band = 0.1
  const std::vector<double> current{0.004, 0.006};
  // Yields 1.0 and 1.09: max/min - 1 = 0.09 < 0.1 -> skip, allocation kept.
  const std::vector<CoordStats> s{stats(0.10, 0.10), stats(0.109, 0.10)};
  const auto out = adaptive.allocate(0.01, current, s);
  EXPECT_EQ(out, current);
}

TEST(AdaptiveAllocation, ReallocatesJustOutsideBand) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.005, 0.005};
  // Yields 1.0 and 1.11: max/min - 1 = 0.11 >= 0.1 -> no skip; allowance
  // moves toward the higher-yield monitor and the total is preserved.
  const std::vector<CoordStats> s{stats(0.10, 0.10), stats(0.111, 0.10)};
  const auto out = adaptive.allocate(0.01, current, s);
  EXPECT_NE(out, current);
  EXPECT_GT(out[1], out[0]);
  EXPECT_NEAR(sum(out), 0.01, 1e-12);
}

TEST(AdaptiveAllocation, ZeroYieldMonitorDefeatsSkip) {
  AdaptiveAllocation adaptive;
  const std::vector<double> current{0.004, 0.003, 0.003};
  // Positive yields are perfectly uniform, but monitor 0 cannot grow
  // (y = 0): min_y == 0 must defeat the skip so its allowance flows to
  // monitors that can use it.
  const std::vector<CoordStats> s{stats(0.0, 0.10), stats(0.10, 0.10),
                                  stats(0.10, 0.10)};
  const auto out = adaptive.allocate(0.01, current, s);
  EXPECT_NE(out, current);
  EXPECT_LT(out[0], current[0]);
  EXPECT_NEAR(sum(out), 0.01, 1e-12);
}

// Two-level conservation, allocator-only: the root splits err across shard
// budgets, each shard splits its budget across monitors — the leaf splits
// must recompose to err exactly (the §13 nesting's bookkeeping invariant).
TEST(AdaptiveAllocation, NestedTwoLevelSplitConservesErr) {
  constexpr double kErr = 0.04;
  AdaptiveAllocation root;
  const std::vector<double> root_current{0.01, 0.01, 0.01, 0.01};
  const std::vector<CoordStats> root_stats{
      stats(0.4, 0.02), stats(0.1, 0.02), stats(0.25, 0.02),
      stats(0.05, 0.02)};
  const auto budgets = root.allocate(kErr, root_current, root_stats);
  EXPECT_NEAR(sum(budgets), kErr, 1e-12);

  double leaf_total = 0.0;
  for (std::size_t shard = 0; shard < budgets.size(); ++shard) {
    AdaptiveAllocation leaf;
    const std::vector<double> current(3, budgets[shard] / 3.0);
    const std::vector<CoordStats> leaf_stats{
        stats(0.3, 0.01), stats(0.1 * static_cast<double>(shard + 1), 0.01),
        stats(0.05, 0.01)};
    const auto split = leaf.allocate(budgets[shard], current, leaf_stats);
    EXPECT_NEAR(sum(split), budgets[shard], 1e-12);
    leaf_total += sum(split);
  }
  EXPECT_NEAR(leaf_total, kErr, 1e-12);
}

}  // namespace
}  // namespace volley
