// Tests for the experiment drivers (sim/runner): Volley vs periodic
// baselines, detection accounting, op recording, the distributed-thresholds
// contract, and the correlated-group driver.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "sim/runner.h"
#include "tasks/app_task.h"

namespace volley {
namespace {

TimeSeries quiet_series(Tick ticks, std::uint64_t seed, double level = 0.0,
                        double noise = 0.01) {
  Rng rng(seed);
  TimeSeries s(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    s[static_cast<std::size_t>(t)] = level + rng.normal(0.0, noise);
  }
  return s;
}

TaskSpec spec_for(double threshold, double err = 0.02) {
  TaskSpec spec;
  spec.global_threshold = threshold;
  spec.error_allowance = err;
  spec.max_interval = 16;
  spec.patience = 5;
  spec.updating_period = 200;
  return spec;
}

TEST(RunPeriodic, IntervalOneIsExactReference) {
  // A spike-bearing series at interval 1 detects everything.
  TimeSeries s = quiet_series(500, 1);
  s[100] = 10.0;
  s[250] = 12.0;
  const TimeSeries arr[] = {s};
  const auto r = run_periodic(arr, 5.0, 1);
  EXPECT_EQ(r.total_ops(), 500);
  EXPECT_DOUBLE_EQ(r.sampling_ratio(), 1.0);
  EXPECT_EQ(r.true_episodes, 2);
  EXPECT_EQ(r.detected_episodes, 2);
  EXPECT_DOUBLE_EQ(r.episode_miss_rate(), 0.0);
}

TEST(RunPeriodic, LargeIntervalMissesShortViolations) {
  // The Figure 1 scheme-B failure mode: one-tick violations between samples.
  TimeSeries s = quiet_series(1000, 2);
  s[101] = 10.0;  // not a multiple of 7
  const TimeSeries arr[] = {s};
  const auto r = run_periodic(arr, 5.0, 7);
  EXPECT_LT(r.total_ops(), 150);
  EXPECT_EQ(r.detected_episodes, 0);
  EXPECT_DOUBLE_EQ(r.episode_miss_rate(), 1.0);
}

TEST(RunVolleySingle, SavesOpsOnQuietTraceWithoutMissing) {
  // Quiet trace + one sustained violation: Volley must save ops and still
  // catch the (long) episode.
  TimeSeries s = quiet_series(2000, 3);
  for (Tick t = 1500; t < 1540; ++t) s[static_cast<std::size_t>(t)] = 10.0;
  const auto r = run_volley_single(spec_for(5.0), s);
  EXPECT_LT(r.sampling_ratio(), 0.6);
  EXPECT_EQ(r.true_episodes, 1);
  EXPECT_EQ(r.detected_episodes, 1);
}

TEST(RunVolleySingle, NoisySeriesDegradesToPeriodic) {
  // When beta always exceeds err the sampler stays at Id: ratio ~= 1.
  Rng rng(5);
  TimeSeries s(2000);
  for (std::size_t t = 0; t < s.size(); ++t) s[t] = rng.normal(0.0, 1.0);
  TaskSpec spec = spec_for(2.5, 0.0005);  // threshold 2.5 sigma, tiny err
  const auto r = run_volley_single(spec, s);
  EXPECT_GT(r.sampling_ratio(), 0.9);
}

TEST(RunVolleySingle, RecordsOpsAndIntervals) {
  TimeSeries s = quiet_series(500, 7);
  RunOptions options;
  options.record_ops = true;
  options.record_intervals = true;
  const auto r = run_volley_single(spec_for(5.0), s, options);
  ASSERT_EQ(r.op_ticks.size(), 1u);
  EXPECT_EQ(static_cast<std::int64_t>(r.op_ticks[0].size()), r.total_ops());
  EXPECT_EQ(r.op_ticks[0].front(), 0);
  EXPECT_EQ(r.interval_trajectory.size(), r.op_ticks[0].size());
  // Intervals grow over the quiet trace.
  EXPECT_GT(r.interval_trajectory.back(), 1);
  // Op ticks are consistent with the recorded intervals (next op = prev +
  // interval chosen at prev).
  for (std::size_t i = 1; i < r.op_ticks[0].size(); ++i) {
    EXPECT_EQ(r.op_ticks[0][i] - r.op_ticks[0][i - 1],
              r.interval_trajectory[i - 1]);
  }
}

TEST(RunVolley, ThresholdSumContractEnforced) {
  const std::vector<TimeSeries> series{quiet_series(100, 8),
                                       quiet_series(100, 9)};
  const std::vector<double> bad{3.0, 3.0};  // sums to 6, not 5
  EXPECT_THROW(run_volley(spec_for(5.0), series, bad), std::invalid_argument);
}

TEST(RunVolley, DistributedDetectionThroughGlobalPoll) {
  // Each monitor stays below its local threshold except a window where both
  // rise: only the aggregate crosses T, which only a global poll can see.
  TimeSeries a = quiet_series(800, 10, 1.0, 0.02);
  TimeSeries b = quiet_series(800, 11, 1.0, 0.02);
  for (Tick t = 400; t < 420; ++t) {
    a[static_cast<std::size_t>(t)] = 3.4;  // below local threshold 3.5
    b[static_cast<std::size_t>(t)] = 3.4;
  }
  // One short local spike triggers the poll during the window.
  a[405] = 3.6;
  const std::vector<TimeSeries> series{a, b};
  TaskSpec spec = spec_for(6.0);
  const std::vector<double> locals{3.0, 3.0};
  const auto r = run_volley(spec, series, locals);
  EXPECT_GT(r.global_polls, 0);
  EXPECT_GT(r.detected_alert_ticks, 0);
}

TEST(RunVolley, AllocatorKindsAllRun) {
  const std::vector<TimeSeries> series{quiet_series(600, 12),
                                       quiet_series(600, 13)};
  const std::vector<double> locals{2.5, 2.5};
  for (auto kind : {AllocatorKind::kNone, AllocatorKind::kEven,
                    AllocatorKind::kAdaptive}) {
    RunOptions options;
    options.allocator = kind;
    const auto r = run_volley(spec_for(5.0), series, locals, options);
    EXPECT_GT(r.total_ops(), 0);
    EXPECT_LE(r.sampling_ratio(), 1.05);
  }
}

TEST(RunVolley, MoreAllowanceNeverCostsMore) {
  TimeSeries s = quiet_series(3000, 14, 0.0, 0.05);
  const auto tight = run_volley_single(spec_for(1.0, 0.002), s);
  const auto loose = run_volley_single(spec_for(1.0, 0.05), s);
  EXPECT_LE(loose.total_ops(), tight.total_ops());
}

TEST(RunCorrelatedGroup, GatingSavesFollowerOps) {
  // Leader (cheap) and follower (expensive) share a low-frequency shape
  // with a violation burst; gating must cut follower ops without missing
  // the burst episode.
  const Tick ticks = 3000;
  Rng rng(15);
  TimeSeries leader(static_cast<std::size_t>(ticks));
  TimeSeries follower(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    const bool burst = t >= 2000 && t < 2100;
    const double base = burst ? 10.0 : 1.0 + 0.2 * std::sin(t * 0.01);
    leader[static_cast<std::size_t>(t)] = base + rng.normal(0.0, 0.02);
    follower[static_cast<std::size_t>(t)] =
        2.0 * base + rng.normal(0.0, 0.02);
  }
  std::vector<CorrelatedTask> tasks(2);
  tasks[0].spec = spec_for(8.0, 0.02);
  tasks[0].series = leader;
  tasks[0].cost_per_sample = 1.0;
  tasks[1].spec = spec_for(16.0, 0.02);
  tasks[1].series = follower;
  tasks[1].cost_per_sample = 20.0;

  CorrelationScheduler::Options sched;
  sched.history_window = 512;
  sched.plan_period = 256;
  sched.min_history = 128;
  sched.cooldown = 32;

  const auto gated = run_correlated_group(tasks, sched, true);
  const auto ungated = run_correlated_group(tasks, sched, false);
  EXPECT_LT(gated.per_task[1].total_ops(), ungated.per_task[1].total_ops());
  EXPECT_EQ(gated.per_task[1].detected_episodes,
            gated.per_task[1].true_episodes);
  EXPECT_FALSE(gated.final_plan.empty());
  EXPECT_LT(gated.total_weighted_cost(tasks),
            ungated.total_weighted_cost(tasks));
}

TEST(RunCorrelatedGroup, RejectsMismatchedLengths) {
  std::vector<CorrelatedTask> tasks(2);
  tasks[0].spec = spec_for(1.0);
  tasks[0].series = quiet_series(100, 1);
  tasks[1].spec = spec_for(1.0);
  tasks[1].series = quiet_series(50, 2);
  EXPECT_THROW(run_correlated_group(tasks, {}, true), std::invalid_argument);
}

// --- dynamic task churn ---------------------------------------------------

TEST(RunDynamicTasks, ChurnScoresEachInstanceOverItsWindow) {
  // Two monitors, one violation window late in the run. Task 1 runs only
  // the quiet first half; task 2 arrives mid-run and owns the episode.
  constexpr Tick kTicks = 2000;
  std::vector<TimeSeries> series{quiet_series(kTicks, 11),
                                 quiet_series(kTicks, 12)};
  for (Tick t = 1200; t < 1240; ++t) {
    series[0][static_cast<std::size_t>(t)] = 10.0;
    series[1][static_cast<std::size_t>(t)] = 10.0;
  }

  std::vector<TaskChurnEvent> events;
  events.push_back({TaskChurnEvent::Kind::kArrive, 0, 1, spec_for(5.0)});
  events.push_back({TaskChurnEvent::Kind::kArrive, 500, 2, spec_for(8.0)});
  events.push_back({TaskChurnEvent::Kind::kDepart, 1000, 1, {}});

  const auto run = run_dynamic_tasks(series, events);
  EXPECT_EQ(run.arrivals, 2);
  EXPECT_EQ(run.departures, 1);
  // Three mutations consumed three epochs (the departure counts too).
  EXPECT_EQ(run.registry_version, 3u);
  ASSERT_EQ(run.tasks.size(), 2u);

  // Task 1 finalized at its departure: epoch 1, window [0, 1000) — all
  // quiet, so no episodes in its score, and the sampler saved ops.
  const auto& first = run.tasks[0];
  EXPECT_EQ(first.task, 1u);
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(first.arrived, 0);
  EXPECT_EQ(first.departed, 1000);
  EXPECT_EQ(first.result.true_episodes, 0);
  EXPECT_GT(first.result.total_ops(), 0);
  EXPECT_LT(first.result.total_ops(), 2 * 1000);

  // Task 2 ran [500, 2000): it owns the violation window and must have
  // detected the episode through its own global polls.
  const auto& second = run.tasks[1];
  EXPECT_EQ(second.task, 2u);
  EXPECT_EQ(second.epoch, 2u);
  EXPECT_EQ(second.arrived, 500);
  EXPECT_EQ(second.departed, kTicks);
  EXPECT_EQ(second.result.true_episodes, 1);
  EXPECT_EQ(second.result.detected_episodes, 1);
  EXPECT_GT(second.result.global_polls, 0);

  EXPECT_EQ(run.total_ops(),
            first.result.total_ops() + second.result.total_ops());
}

TEST(RunDynamicTasks, StandingTaskUnperturbedByChurnAroundIt) {
  // A task that stands through heavy churn must score exactly like the same
  // task in a churn-free run: per-task allocation isolates it (each task
  // has its own allowance and sampler state).
  constexpr Tick kTicks = 1500;
  std::vector<TimeSeries> series{quiet_series(kTicks, 21),
                                 quiet_series(kTicks, 22)};
  for (Tick t = 700; t < 730; ++t) {
    series[0][static_cast<std::size_t>(t)] = 8.0;
    series[1][static_cast<std::size_t>(t)] = 8.0;
  }

  std::vector<TaskChurnEvent> standing_only;
  standing_only.push_back(
      {TaskChurnEvent::Kind::kArrive, 0, 1, spec_for(6.0)});

  std::vector<TaskChurnEvent> churny = standing_only;
  churny.push_back({TaskChurnEvent::Kind::kArrive, 200, 2, spec_for(3.0)});
  churny.push_back({TaskChurnEvent::Kind::kDepart, 400, 2, {}});
  churny.push_back({TaskChurnEvent::Kind::kArrive, 600, 3, spec_for(9.0)});
  churny.push_back({TaskChurnEvent::Kind::kDepart, 900, 3, {}});

  const auto baseline = run_dynamic_tasks(series, standing_only);
  const auto churned = run_dynamic_tasks(series, churny);
  ASSERT_EQ(baseline.tasks.size(), 1u);
  const auto* standing = &churned.tasks.back();  // finalized last (at end)
  ASSERT_EQ(standing->task, 1u);
  EXPECT_EQ(standing->result.total_ops(), baseline.tasks[0].result.total_ops());
  EXPECT_EQ(standing->result.detected_episodes,
            baseline.tasks[0].result.detected_episodes);
  EXPECT_EQ(standing->result.global_polls, baseline.tasks[0].result.global_polls);
  // The churn consumed extra epochs: 5 mutations versus 1.
  EXPECT_EQ(churned.registry_version, 5u);
  EXPECT_EQ(baseline.registry_version, 1u);
}

TEST(RunDynamicTasks, RejectsInvalidEventStreams) {
  std::vector<TimeSeries> series{quiet_series(100, 31)};

  // Duplicate arrival for a live id.
  std::vector<TaskChurnEvent> dup;
  dup.push_back({TaskChurnEvent::Kind::kArrive, 0, 1, spec_for(5.0)});
  dup.push_back({TaskChurnEvent::Kind::kArrive, 10, 1, spec_for(5.0)});
  EXPECT_THROW(run_dynamic_tasks(series, dup), std::invalid_argument);

  // Departure of a task that never arrived.
  std::vector<TaskChurnEvent> ghost;
  ghost.push_back({TaskChurnEvent::Kind::kDepart, 5, 9, {}});
  EXPECT_THROW(run_dynamic_tasks(series, ghost), std::invalid_argument);

  // Series length mismatch.
  std::vector<TimeSeries> uneven{quiet_series(100, 32), quiet_series(50, 33)};
  std::vector<TaskChurnEvent> ok;
  ok.push_back({TaskChurnEvent::Kind::kArrive, 0, 1, spec_for(5.0)});
  EXPECT_THROW(run_dynamic_tasks(uneven, ok), std::invalid_argument);
}

TEST(RunDynamicTasks, EventOrderDoesNotMatter) {
  // The run is a pure function of the event *set*: shuffled input must
  // produce results identical to sorted input (epochs included), because
  // events are applied in canonical_churn_order.
  constexpr Tick kTicks = 1200;
  std::vector<TimeSeries> series{quiet_series(kTicks, 41),
                                 quiet_series(kTicks, 42)};
  for (Tick t = 600; t < 640; ++t) {
    series[0][static_cast<std::size_t>(t)] = 9.0;
    series[1][static_cast<std::size_t>(t)] = 9.0;
  }

  std::vector<TaskChurnEvent> sorted;
  sorted.push_back({TaskChurnEvent::Kind::kArrive, 0, 1, spec_for(5.0)});
  sorted.push_back({TaskChurnEvent::Kind::kArrive, 300, 2, spec_for(7.0)});
  sorted.push_back({TaskChurnEvent::Kind::kDepart, 800, 2, {}});
  // Same-tick retire-and-re-add of one id: the depart applies first
  // regardless of input position.
  sorted.push_back({TaskChurnEvent::Kind::kDepart, 900, 1, {}});
  sorted.push_back({TaskChurnEvent::Kind::kArrive, 900, 1, spec_for(4.0)});

  std::vector<TaskChurnEvent> shuffled{sorted[4], sorted[2], sorted[0],
                                       sorted[3], sorted[1]};

  const auto a = run_dynamic_tasks(series, sorted);
  const auto b = run_dynamic_tasks(series, shuffled);
  EXPECT_EQ(a.registry_version, b.registry_version);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.departures, b.departures);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].task, b.tasks[i].task);
    EXPECT_EQ(a.tasks[i].epoch, b.tasks[i].epoch);
    EXPECT_EQ(a.tasks[i].arrived, b.tasks[i].arrived);
    EXPECT_EQ(a.tasks[i].departed, b.tasks[i].departed);
    EXPECT_EQ(a.tasks[i].result.total_ops(), b.tasks[i].result.total_ops());
    EXPECT_EQ(a.tasks[i].result.global_polls,
              b.tasks[i].result.global_polls);
    EXPECT_EQ(a.tasks[i].result.detected_episodes,
              b.tasks[i].result.detected_episodes);
  }
}

TEST(MakeChurnSchedule, SeedDerivedAndCanonical) {
  ChurnScheduleOptions options;
  options.seed = 77;
  options.ticks = 2000;
  options.arrivals = 6;
  options.first_task = 100;
  options.hold_min = 100;
  options.hold_max = 400;
  options.spec = spec_for(5.0);

  const auto a = make_churn_schedule(options);
  const auto b = make_churn_schedule(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].tick, b[i].tick);
    EXPECT_EQ(a[i].task, b[i].task);
  }

  // Canonical order: ascending tick; departs before arrives on ties;
  // ascending task id within a group.
  for (std::size_t i = 1; i < a.size(); ++i) {
    ASSERT_LE(a[i - 1].tick, a[i].tick);
    if (a[i - 1].tick == a[i].tick) {
      const int ra = a[i - 1].kind == TaskChurnEvent::Kind::kDepart ? 0 : 1;
      const int rb = a[i].kind == TaskChurnEvent::Kind::kDepart ? 0 : 1;
      ASSERT_LE(ra, rb);
      if (ra == rb) {
        ASSERT_LT(a[i - 1].task, a[i].task);
      }
    }
  }

  // Every instance arrives; holds stay within [hold_min, hold_max].
  std::map<TaskId, Tick> arrive;
  int departs = 0;
  for (const auto& event : a) {
    if (event.kind == TaskChurnEvent::Kind::kArrive) {
      EXPECT_GE(event.task, options.first_task);
      EXPECT_LT(event.task,
                options.first_task + static_cast<TaskId>(options.arrivals));
      arrive[event.task] = event.tick;
    } else {
      ++departs;
      ASSERT_TRUE(arrive.count(event.task));
      const Tick hold = event.tick - arrive[event.task];
      EXPECT_GE(hold, options.hold_min);
      EXPECT_LE(hold, options.hold_max);
    }
  }
  EXPECT_EQ(arrive.size(), static_cast<std::size_t>(options.arrivals));
  EXPECT_LE(departs, options.arrivals);

  // A different seed draws a different schedule.
  options.seed = 78;
  const auto c = make_churn_schedule(options);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].tick != c[i].tick || a[i].task != c[i].task;
  EXPECT_TRUE(differs);

  // The schedule must run under run_dynamic_tasks as-is.
  std::vector<TimeSeries> series{quiet_series(options.ticks, 51)};
  const auto run = run_dynamic_tasks(series, a);
  EXPECT_EQ(run.arrivals, options.arrivals);
}

}  // namespace
}  // namespace volley
