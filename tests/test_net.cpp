// Tests for the wire runtime: framing, message codec round-trips, socket
// primitives, and a full coordinator + monitors session over localhost TCP.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/metric_source.h"
#include "net/coordinator_node.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/monitor_node.h"
#include "net/socket.h"

namespace volley {
namespace {

using net::AllowanceUpdate;
using net::Bye;
using net::Hello;
using net::LocalViolation;
using net::Message;
using net::PollRequest;
using net::PollResponse;
using net::Shutdown;
using net::StatsReport;

std::span<const std::byte> as_bytes(const std::vector<std::byte>& v) {
  return {v.data(), v.size()};
}

TEST(Framing, RoundTripsSingleFrame) {
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2},
                                       std::byte{3}};
  const auto framed = frame_payload(payload);
  EXPECT_EQ(framed.size(), 7u);
  FrameReader reader;
  reader.feed(framed);
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Framing, HandlesPartialDelivery) {
  const std::vector<std::byte> payload(100, std::byte{7});
  const auto framed = frame_payload(payload);
  FrameReader reader;
  // Feed byte by byte: no frame until the last byte arrives.
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    reader.feed(std::span<const std::byte>(&framed[i], 1));
    EXPECT_FALSE(reader.next().has_value());
  }
  reader.feed(std::span<const std::byte>(&framed.back(), 1));
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 100u);
}

TEST(Framing, HandlesCoalescedFrames) {
  std::vector<std::byte> stream;
  for (int i = 0; i < 3; ++i) {
    const std::vector<std::byte> payload(static_cast<std::size_t>(i + 1),
                                         std::byte{static_cast<unsigned char>(i)});
    const auto framed = frame_payload(payload);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  FrameReader reader;
  reader.feed(stream);
  for (int i = 0; i < 3; ++i) {
    const auto out = reader.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->size(), static_cast<std::size_t>(i + 1));
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Framing, RejectsOversizedFrame) {
  std::vector<std::byte> evil(4);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(evil.data(), &huge, 4);
  FrameReader reader;
  reader.feed(evil);
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(Framing, EmptyPayloadIsLegal) {
  const auto framed = frame_payload({});
  FrameReader reader;
  reader.feed(framed);
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

template <typename T>
T round_trip(const T& in) {
  const auto bytes = net::encode(Message{in});
  const auto out = net::decode(as_bytes(bytes));
  EXPECT_TRUE(out.has_value());
  return std::get<T>(*out);
}

TEST(Messages, HelloRoundTrip) {
  const auto out = round_trip(Hello{42});
  EXPECT_EQ(out.monitor, 42u);
}

TEST(Messages, LocalViolationRoundTrip) {
  const auto out = round_trip(LocalViolation{7, 123456789, -3.25});
  EXPECT_EQ(out.monitor, 7u);
  EXPECT_EQ(out.tick, 123456789);
  EXPECT_DOUBLE_EQ(out.value, -3.25);
}

TEST(Messages, PollRoundTrips) {
  const auto req = round_trip(PollRequest{55, 99});
  EXPECT_EQ(req.tick, 55);
  EXPECT_EQ(req.poll_id, 99u);
  const auto resp = round_trip(PollResponse{3, 99, 55, 17.5});
  EXPECT_EQ(resp.monitor, 3u);
  EXPECT_DOUBLE_EQ(resp.value, 17.5);
}

TEST(Messages, StatsAllowanceByeShutdownRoundTrip) {
  const auto stats = round_trip(StatsReport{1, 0.25, 0.001, 40});
  EXPECT_DOUBLE_EQ(stats.avg_gain, 0.25);
  EXPECT_EQ(stats.observations, 40);
  const auto update = round_trip(AllowanceUpdate{0.007});
  EXPECT_DOUBLE_EQ(update.error_allowance, 0.007);
  const auto bye = round_trip(Bye{2, 100, 5});
  EXPECT_EQ(bye.scheduled_ops, 100);
  EXPECT_NO_THROW(round_trip(Shutdown{}));
}

TEST(Messages, DecodeRejectsGarbage) {
  EXPECT_FALSE(net::decode({}).has_value());
  const std::vector<std::byte> unknown{std::byte{0xFF}};
  EXPECT_FALSE(net::decode(as_bytes(unknown)).has_value());
  // Truncated LocalViolation.
  auto bytes = net::encode(Message{LocalViolation{1, 2, 3.0}});
  bytes.pop_back();
  EXPECT_FALSE(net::decode(as_bytes(bytes)).has_value());
  // Trailing junk is rejected too.
  bytes = net::encode(Message{Hello{1}});
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(net::decode(as_bytes(bytes)).has_value());
}

TEST(Socket, LoopbackEcho) {
  TcpListener listener(0);
  std::thread server([&listener] {
    auto conn = listener.accept();
    ASSERT_TRUE(conn.has_value());
    std::array<std::byte, 64> buf;
    const auto n = conn->recv_some(buf);
    ASSERT_TRUE(n.has_value());
    conn->send_all(std::span<const std::byte>(buf.data(), *n));
  });
  auto client = TcpConnection::connect("127.0.0.1", listener.port());
  const std::vector<std::byte> msg{std::byte{0xAB}, std::byte{0xCD}};
  ASSERT_TRUE(client.send_all(msg));
  std::array<std::byte, 64> buf;
  const auto n = client.recv_some(buf);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(buf[0], std::byte{0xAB});
  server.join();
}

TEST(Socket, ConnectToClosedPortThrows) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }  // listener closed
  EXPECT_THROW(TcpConnection::connect("127.0.0.1", dead_port),
               std::system_error);
}

TEST(Socket, NonblockingRecvReturnsNulloptWhenIdle) {
  TcpListener listener(0);
  auto client = TcpConnection::connect("127.0.0.1", listener.port());
  auto served = listener.accept();
  ASSERT_TRUE(served.has_value());
  client.set_nonblocking(true);
  std::array<std::byte, 8> buf;
  EXPECT_FALSE(client.recv_some(buf).has_value());
}

// End-to-end distributed session: one coordinator, three monitors over
// localhost TCP. Monitor 0 carries a sustained violation window; the other
// two stay quiet. The coordinator must see global polls and, because the
// aggregate crosses T, record at least one alert.
TEST(NetIntegration, CoordinatorAndMonitorsDetectViolation) {
  constexpr Tick kTicks = 400;
  net::CoordinatorNodeOptions copt;
  copt.monitors = 3;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.03;
  net::CoordinatorNode coordinator(copt);

  std::vector<std::unique_ptr<CallableSource>> sources;
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick t) { return (t >= 200 && t < 260) ? 20.0 : 0.5; }, kTicks));
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick) { return 0.5; }, kTicks));
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick) { return 0.5; }, kTicks));

  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (MonitorId id = 0; id < 3; ++id) {
    net::MonitorNodeOptions mopt;
    mopt.id = id;
    mopt.coordinator_port = coordinator.port();
    mopt.local_threshold = 10.0 / 3.0;
    mopt.sampler.error_allowance = 0.01;
    mopt.sampler.patience = 3;
    mopt.sampler.max_interval = 8;
    mopt.ticks = kTicks;
    mopt.updating_period = 100;
    mopt.tick_micros = 300;
    nodes.push_back(
        std::make_unique<net::MonitorNode>(mopt, *sources[id]));
  }

  std::thread coord_thread([&coordinator] { coordinator.run(); });
  std::vector<std::thread> monitor_threads;
  monitor_threads.reserve(nodes.size());
  for (auto& node : nodes) {
    monitor_threads.emplace_back([&node] { node->run(); });
  }
  for (auto& t : monitor_threads) t.join();
  coord_thread.join();

  EXPECT_GT(coordinator.global_polls(), 0);
  ASSERT_FALSE(coordinator.alerts().empty());
  for (const auto& alert : coordinator.alerts()) {
    EXPECT_GT(alert.value, 10.0);
  }
  // Every monitor reported its op totals on Bye.
  EXPECT_EQ(coordinator.reported_ops().size(), 3u);
  // Monitors saved ops versus periodic sampling on the quiet stretches.
  for (const auto& [id, ops] : coordinator.reported_ops()) {
    EXPECT_GT(ops, 0);
    EXPECT_LT(ops, kTicks);
  }
}

// The allowance reallocation path: monitors with different volatility run a
// session with StatsReports; the coordinator must issue AllowanceUpdates
// (observable as reallocations > 0) without breaking the session.
TEST(NetIntegration, AllowanceReallocationHappens) {
  constexpr Tick kTicks = 500;
  net::CoordinatorNodeOptions copt;
  copt.monitors = 2;
  copt.global_threshold = 100.0;
  copt.error_allowance = 0.04;
  copt.adaptive_allocation = true;
  net::CoordinatorNode coordinator(copt);

  CallableSource quiet([](Tick) { return 0.1; }, kTicks);
  CallableSource wiggly(
      [](Tick t) { return 5.0 + 4.0 * ((t % 7) / 6.0); }, kTicks);

  net::MonitorNodeOptions m0;
  m0.id = 0;
  m0.coordinator_port = coordinator.port();
  m0.local_threshold = 50.0;
  m0.ticks = kTicks;
  m0.updating_period = 120;
  m0.tick_micros = 200;
  net::MonitorNodeOptions m1 = m0;
  m1.id = 1;
  net::MonitorNode node0(m0, quiet), node1(m1, wiggly);

  std::thread ct([&coordinator] { coordinator.run(); });
  std::thread t0([&node0] { node0.run(); });
  std::thread t1([&node1] { node1.run(); });
  t0.join();
  t1.join();
  ct.join();

  EXPECT_GT(coordinator.reallocations(), 0);
}

}  // namespace
}  // namespace volley
