// Tests for the wire runtime: framing, message codec round-trips, socket
// primitives, full coordinator + monitors sessions over localhost TCP, and
// the failure model: heartbeat liveness, stale-value poll completion,
// allowance reclamation, coordinator restart/reconnect, and the chaos proxy.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <csignal>
#include <set>

#include <chrono>
#include <cstring>
#include <thread>

#include "core/metric_source.h"
#include "net/chaos_proxy.h"
#include "net/coordinator_node.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/monitor_node.h"
#include "net/socket.h"

namespace volley {
namespace {

using net::AllowanceUpdate;
using net::Bye;
using net::Heartbeat;
using net::HeartbeatAck;
using net::Hello;
using net::LocalViolation;
using net::Message;
using net::PollRequest;
using net::PollResponse;
using net::Shutdown;
using net::StatsReply;
using net::StatsReport;
using net::StatsRequest;

std::span<const std::byte> as_bytes(const std::vector<std::byte>& v) {
  return {v.data(), v.size()};
}

TEST(Framing, RoundTripsSingleFrame) {
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2},
                                       std::byte{3}};
  const auto framed = frame_payload(payload);
  EXPECT_EQ(framed.size(), 7u);
  FrameReader reader;
  reader.feed(framed);
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Framing, HandlesPartialDelivery) {
  const std::vector<std::byte> payload(100, std::byte{7});
  const auto framed = frame_payload(payload);
  FrameReader reader;
  // Feed byte by byte: no frame until the last byte arrives.
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    reader.feed(std::span<const std::byte>(&framed[i], 1));
    EXPECT_FALSE(reader.next().has_value());
  }
  reader.feed(std::span<const std::byte>(&framed.back(), 1));
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 100u);
}

TEST(Framing, HandlesCoalescedFrames) {
  std::vector<std::byte> stream;
  for (int i = 0; i < 3; ++i) {
    const std::vector<std::byte> payload(static_cast<std::size_t>(i + 1),
                                         std::byte{static_cast<unsigned char>(i)});
    const auto framed = frame_payload(payload);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  FrameReader reader;
  reader.feed(stream);
  for (int i = 0; i < 3; ++i) {
    const auto out = reader.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->size(), static_cast<std::size_t>(i + 1));
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Framing, RejectsOversizedFrame) {
  std::vector<std::byte> evil(4);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(evil.data(), &huge, 4);
  FrameReader reader;
  reader.feed(evil);
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(Framing, EmptyPayloadIsLegal) {
  const auto framed = frame_payload({});
  FrameReader reader;
  reader.feed(framed);
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Framing, OneByteSlicesReassembleManyFrames) {
  // Fuzz the incremental decoder: 50 frames of varying size (including
  // empty) streamed one byte at a time, so every cut point — mid-header and
  // mid-payload — is exercised for every frame.
  std::vector<std::byte> stream;
  for (int i = 0; i < 50; ++i) {
    const std::vector<std::byte> payload(
        static_cast<std::size_t>((i * 37) % 256),
        std::byte{static_cast<unsigned char>(i)});
    const auto framed = frame_payload(payload);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  FrameReader reader;
  int frames = 0;
  for (const std::byte b : stream) {
    reader.feed(std::span<const std::byte>(&b, 1));
    while (const auto payload = reader.next()) {
      EXPECT_EQ(payload->size(),
                static_cast<std::size_t>((frames * 37) % 256));
      if (!payload->empty()) {
        EXPECT_EQ(payload->front(),
                  std::byte{static_cast<unsigned char>(frames)});
      }
      ++frames;
    }
  }
  EXPECT_EQ(frames, 50);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

// --- batched egress (FrameWriter) ----------------------------------------

struct SocketPair {
  int fds[2]{-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    for (const int fd : fds) ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int writer() const { return fds[0]; }
  /// Reads whatever is currently buffered on the receiving side.
  std::vector<std::byte> drain() {
    std::vector<std::byte> out;
    std::array<std::byte, 16384> buf;
    for (;;) {
      const ssize_t n = ::read(fds[1], buf.data(), buf.size());
      if (n <= 0) break;  // EAGAIN (or EOF): drained
      out.insert(out.end(), buf.begin(), buf.begin() + n);
    }
    return out;
  }
};

TEST(FrameWriterTest, CoalescesQueuedFramesIntoOneVectoredWrite) {
  SocketPair sp;
  FrameWriter writer;
  for (int i = 0; i < 10; ++i) {
    writer.enqueue(frame_payload(std::vector<std::byte>(
        8, std::byte{static_cast<unsigned char>(i)})));
  }
  EXPECT_EQ(writer.queued_frames(), 10u);
  EXPECT_EQ(writer.queued_bytes(), 10u * 12u);
  ASSERT_EQ(writer.flush(sp.writer()), FrameWriter::FlushResult::kDrained);
  // Ten frames left in ONE sendmsg — the batching the reactor path counts
  // on to beat per-frame send_all.
  EXPECT_EQ(writer.stats().writev_calls, 1);
  EXPECT_EQ(writer.stats().frames_written, 10);
  EXPECT_EQ(writer.stats().bytes_written, 120);
  EXPECT_TRUE(writer.empty());

  FrameReader reader;
  reader.feed(as_bytes(sp.drain()));
  for (int i = 0; i < 10; ++i) {
    const auto payload = reader.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(payload->size(), 8u);
    EXPECT_EQ(payload->front(), std::byte{static_cast<unsigned char>(i)});
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameWriterTest, DrainsQueuesLargerThanOneIovBatch) {
  SocketPair sp;
  FrameWriter writer;
  constexpr int kFrames = 200;  // > kMaxIov: needs several gather batches
  for (int i = 0; i < kFrames; ++i) {
    writer.enqueue(frame_payload(std::vector<std::byte>(
        4, std::byte{static_cast<unsigned char>(i % 251)})));
  }
  ASSERT_EQ(writer.flush(sp.writer()), FrameWriter::FlushResult::kDrained);
  EXPECT_EQ(writer.stats().frames_written, kFrames);
  EXPECT_GE(writer.stats().writev_calls, 4);  // ceil(200 / kMaxIov)

  FrameReader reader;
  reader.feed(as_bytes(sp.drain()));
  int frames = 0;
  while (const auto payload = reader.next()) {
    EXPECT_EQ(payload->front(),
              std::byte{static_cast<unsigned char>(frames % 251)});
    ++frames;
  }
  EXPECT_EQ(frames, kFrames);
}

TEST(FrameWriterTest, ResumesMidFrameAfterEagain) {
  // A frame much larger than the socket buffers must hit EAGAIN mid-frame;
  // subsequent flushes resume at the saved offset and the receiver still
  // reassembles the exact bytes — plus the small frame queued behind it.
  SocketPair sp;
  std::vector<std::byte> big(512 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = std::byte{static_cast<unsigned char>(i * 31)};
  }
  FrameWriter writer;
  writer.enqueue(frame_payload(big));
  writer.enqueue(
      frame_payload(std::vector<std::byte>{std::byte{0xEE}}));

  auto result = writer.flush(sp.writer());
  EXPECT_EQ(result, FrameWriter::FlushResult::kBlocked);
  EXPECT_FALSE(writer.empty());

  FrameReader reader;
  int rounds = 0;
  while (result == FrameWriter::FlushResult::kBlocked && rounds++ < 10000) {
    reader.feed(as_bytes(sp.drain()));  // make room in the kernel buffers
    result = writer.flush(sp.writer());
  }
  ASSERT_EQ(result, FrameWriter::FlushResult::kDrained);
  EXPECT_GE(writer.stats().writev_calls, 2);
  EXPECT_EQ(writer.stats().frames_written, 2);
  reader.feed(as_bytes(sp.drain()));

  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, big);  // byte-exact across the EAGAIN resume points
  const auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, std::vector<std::byte>{std::byte{0xEE}});
}

TEST(FrameWriterTest, ReportsPeerGoneWithoutSigpipe) {
  SocketPair sp;
  ::close(sp.fds[1]);
  sp.fds[1] = -1;
  FrameWriter writer;
  writer.enqueue(frame_payload(std::vector<std::byte>(8, std::byte{1})));
  // MSG_NOSIGNAL: the dead peer surfaces as a result code, not SIGPIPE.
  EXPECT_EQ(writer.flush(sp.writer()), FrameWriter::FlushResult::kPeerGone);
}

TEST(FrameWriterTest, ClearDropsQueueWithoutWriting) {
  FrameWriter writer;
  writer.enqueue(frame_payload(std::vector<std::byte>(8, std::byte{1})));
  EXPECT_EQ(writer.queued_bytes(), 12u);
  writer.clear();
  EXPECT_TRUE(writer.empty());
  EXPECT_EQ(writer.queued_bytes(), 0u);
  SocketPair sp;
  EXPECT_EQ(writer.flush(sp.writer()), FrameWriter::FlushResult::kDrained);
  EXPECT_EQ(writer.stats().writev_calls, 0);  // nothing reached the socket
}

TEST(FrameWriterTest, FlushBlockingDrainsAcrossFullBuffers) {
  // The shutdown-broadcast path: the queue exceeds the kernel buffers, so
  // the drain must wait on POLLOUT while a peer consumes — and finish.
  SocketPair sp;
  std::vector<std::byte> big(512 * 1024, std::byte{0x5A});
  FrameWriter writer;
  writer.enqueue(frame_payload(big));
  const std::size_t expected = big.size() + 4;

  std::size_t received = 0;
  std::thread consumer([&] {
    std::array<std::byte, 16384> buf;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (received < expected &&
           std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{sp.fds[1], POLLIN, 0};
      ::poll(&pfd, 1, 100);
      const ssize_t n = ::read(sp.fds[1], buf.data(), buf.size());
      if (n > 0) received += static_cast<std::size_t>(n);
    }
  });
  EXPECT_EQ(writer.flush_blocking(sp.writer(), 5000),
            FrameWriter::FlushResult::kDrained);
  consumer.join();
  EXPECT_EQ(received, expected);
  EXPECT_EQ(writer.stats().bytes_written,
            static_cast<std::int64_t>(expected));
}

template <typename T>
T round_trip(const T& in) {
  const auto bytes = net::encode(Message{in});
  const auto out = net::decode(as_bytes(bytes));
  EXPECT_TRUE(out.has_value());
  return std::get<T>(*out);
}

TEST(Messages, HelloRoundTrip) {
  const auto out = round_trip(Hello{42});
  EXPECT_EQ(out.monitor, 42u);
  EXPECT_FALSE(out.resume);
}

TEST(Messages, HelloResumeRoundTrip) {
  const auto out = round_trip(Hello{42, true});
  EXPECT_EQ(out.monitor, 42u);
  EXPECT_TRUE(out.resume);
}

TEST(Messages, HeartbeatRoundTrips) {
  const auto beat = round_trip(Heartbeat{9, 123456789u});
  EXPECT_EQ(beat.monitor, 9u);
  EXPECT_EQ(beat.seq, 123456789u);
  const auto ack = round_trip(HeartbeatAck{123456789u});
  EXPECT_EQ(ack.seq, 123456789u);
}

TEST(Messages, LocalViolationRoundTrip) {
  const auto out = round_trip(LocalViolation{7, 123456789, -3.25});
  EXPECT_EQ(out.monitor, 7u);
  EXPECT_EQ(out.tick, 123456789);
  EXPECT_DOUBLE_EQ(out.value, -3.25);
}

TEST(Messages, PollRoundTrips) {
  const auto req = round_trip(PollRequest{55, 99});
  EXPECT_EQ(req.tick, 55);
  EXPECT_EQ(req.poll_id, 99u);
  const auto resp = round_trip(PollResponse{3, 99, 55, 17.5});
  EXPECT_EQ(resp.monitor, 3u);
  EXPECT_DOUBLE_EQ(resp.value, 17.5);
}

TEST(Messages, StatsAllowanceByeShutdownRoundTrip) {
  const auto stats = round_trip(StatsReport{1, 0.25, 0.001, 40});
  EXPECT_DOUBLE_EQ(stats.avg_gain, 0.25);
  EXPECT_EQ(stats.observations, 40);
  const auto update = round_trip(AllowanceUpdate{0.007});
  EXPECT_DOUBLE_EQ(update.error_allowance, 0.007);
  const auto bye = round_trip(Bye{2, 100, 5});
  EXPECT_EQ(bye.scheduled_ops, 100);
  EXPECT_NO_THROW(round_trip(Shutdown{}));
}

TEST(Messages, StatsRequestReplyRoundTrip) {
  StatsRequest req;
  req.flags = StatsRequest::kIncludeTrace | StatsRequest::kMetricsJson;
  const auto req_out = round_trip(req);
  EXPECT_EQ(req_out.flags, req.flags);

  StatsReply reply;
  reply.global_polls = 12;
  reply.reallocations = 3;
  reply.alerts = 2;
  reply.metrics = "# HELP volley_x_total test\nvolley_x_total 5\n";
  reply.trace_jsonl = "{\"seq\":0,\"kind\":\"sample_taken\"}\n";
  const auto reply_out = round_trip(reply);
  EXPECT_EQ(reply_out.global_polls, 12);
  EXPECT_EQ(reply_out.reallocations, 3);
  EXPECT_EQ(reply_out.alerts, 2);
  EXPECT_EQ(reply_out.metrics, reply.metrics);
  EXPECT_EQ(reply_out.trace_jsonl, reply.trace_jsonl);

  // Empty strings encode and decode cleanly too.
  const auto empty_out = round_trip(StatsReply{});
  EXPECT_TRUE(empty_out.metrics.empty());
  EXPECT_TRUE(empty_out.trace_jsonl.empty());
}

TEST(Messages, StatsReplyDecodeRejectsTruncatedString) {
  StatsReply reply;
  reply.metrics = "some metrics payload";
  auto bytes = net::encode(Message{reply});
  bytes.resize(bytes.size() - 4);  // cut into the string bytes
  EXPECT_FALSE(net::decode(as_bytes(bytes)).has_value());
}

TEST(Messages, DecodeRejectsGarbage) {
  EXPECT_FALSE(net::decode({}).has_value());
  const std::vector<std::byte> unknown{std::byte{0xFF}};
  EXPECT_FALSE(net::decode(as_bytes(unknown)).has_value());
  // Truncated LocalViolation.
  auto bytes = net::encode(Message{LocalViolation{1, 2, 3.0}});
  bytes.pop_back();
  EXPECT_FALSE(net::decode(as_bytes(bytes)).has_value());
  // Trailing junk is rejected too.
  bytes = net::encode(Message{Hello{1}});
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(net::decode(as_bytes(bytes)).has_value());
}

// --- control-plane frames -------------------------------------------------

TaskSpec control_spec(double threshold) {
  TaskSpec spec;
  spec.global_threshold = threshold;
  spec.error_allowance = 0.05;
  spec.id_seconds = 3.0;
  spec.max_interval = 16;
  spec.slack_ratio = 0.25;
  spec.patience = 5;
  spec.updating_period = 600;
  spec.estimator.bound = ViolationLikelihoodEstimator::Bound::kGaussian;
  return spec;
}

TEST(Messages, AddUpdateTaskRoundTripCarrySpec) {
  const auto add = round_trip(net::AddTask{9, control_spec(33.0)});
  EXPECT_EQ(add.task, 9u);
  EXPECT_TRUE(control::specs_equal(add.spec, control_spec(33.0)));

  const auto update = round_trip(net::UpdateTask{9, control_spec(44.0)});
  EXPECT_EQ(update.task, 9u);
  EXPECT_DOUBLE_EQ(update.spec.global_threshold, 44.0);
}

TEST(Messages, RemoveListControlReplyRoundTrip) {
  EXPECT_EQ(round_trip(net::RemoveTask{3}).task, 3u);
  EXPECT_NO_THROW(round_trip(net::ListTasks{}));

  net::ControlReply reply;
  reply.status = control::ControlStatus::kExists;
  reply.epoch = 17;
  reply.registry_version = 19;
  reply.message = "task 3 already exists";
  const auto out = round_trip(reply);
  EXPECT_EQ(out.status, control::ControlStatus::kExists);
  EXPECT_EQ(out.epoch, 17u);
  EXPECT_EQ(out.registry_version, 19u);
  EXPECT_EQ(out.message, reply.message);
}

TEST(Messages, ControlReplyRejectsUnknownStatusByte) {
  auto bytes = net::encode(Message{net::ControlReply{}});
  bytes[1] = std::byte{99};  // status is the first field after the type
  EXPECT_FALSE(net::decode(as_bytes(bytes)).has_value());
}

TEST(Messages, TaskListReplyRoundTrip) {
  net::TaskListReply reply;
  reply.registry_version = 42;
  net::TaskEntry entry;
  entry.task = 7;
  entry.epoch = 41;
  entry.global_threshold = 30.0;
  entry.error_allowance = 0.06;
  entry.updating_period = 500;
  entry.allowance_split = {{0, 0.02}, {1, 0.03}, {2, 0.01}};
  reply.tasks = {entry, net::TaskEntry{}};

  const auto out = round_trip(reply);
  EXPECT_EQ(out.registry_version, 42u);
  ASSERT_EQ(out.tasks.size(), 2u);
  EXPECT_EQ(out.tasks[0].task, 7u);
  EXPECT_EQ(out.tasks[0].epoch, 41u);
  EXPECT_DOUBLE_EQ(out.tasks[0].global_threshold, 30.0);
  ASSERT_EQ(out.tasks[0].allowance_split.size(), 3u);
  EXPECT_EQ(out.tasks[0].allowance_split[1].first, 1u);
  EXPECT_DOUBLE_EQ(out.tasks[0].allowance_split[1].second, 0.03);
  EXPECT_TRUE(out.tasks[1].allowance_split.empty());
}

TEST(Messages, TaskListReplyRejectsOversizedCounts) {
  // An empty reply is 13 bytes: type | u64 version | u32 count. Patching
  // the count past kMaxTasks must fail the decode outright (a corrupt count
  // must not drive a near-unbounded parse loop), and a smaller-but-wrong
  // count must fail on truncation.
  const auto base = net::encode(Message{net::TaskListReply{}});
  ASSERT_EQ(base.size(), 13u);

  auto oversized = base;
  const std::uint32_t huge = net::TaskListReply::kMaxTasks + 1;
  std::memcpy(oversized.data() + 9, &huge, 4);
  EXPECT_FALSE(net::decode(as_bytes(oversized)).has_value());

  auto lying = base;
  const std::uint32_t one = 1;
  std::memcpy(lying.data() + 9, &one, 4);  // promises an entry, has none
  EXPECT_FALSE(net::decode(as_bytes(lying)).has_value());
}

TEST(Messages, TaskAttachDetachRoundTrip) {
  net::TaskAttach attach;
  attach.task = 4;
  attach.epoch = 12;
  attach.local_threshold = 2.5;
  attach.error_allowance = 0.015;
  attach.slack_ratio = 0.3;
  attach.patience = -1;  // negative patience survives the u32 wire encoding
  attach.max_interval = 64;
  attach.updating_period = 250;
  const auto out = round_trip(attach);
  EXPECT_EQ(out.task, 4u);
  EXPECT_EQ(out.epoch, 12u);
  EXPECT_DOUBLE_EQ(out.local_threshold, 2.5);
  EXPECT_DOUBLE_EQ(out.error_allowance, 0.015);
  EXPECT_DOUBLE_EQ(out.slack_ratio, 0.3);
  EXPECT_EQ(out.patience, -1);
  EXPECT_EQ(out.max_interval, 64);
  EXPECT_EQ(out.updating_period, 250);

  const auto detach = round_trip(net::TaskDetach{4, 13});
  EXPECT_EQ(detach.task, 4u);
  EXPECT_EQ(detach.epoch, 13u);
}

TEST(Messages, TaskScopedFramesCarryTaskId) {
  EXPECT_EQ(round_trip(LocalViolation{7, 11, 1.5, 3}).task, 3u);
  EXPECT_EQ(round_trip(PollRequest{55, 99, 3}).task, 3u);
  EXPECT_EQ(round_trip(PollResponse{1, 99, 55, 2.0, 3}).task, 3u);
  EXPECT_EQ(round_trip(StatsReport{1, 0.5, 0.01, 10, 3}).task, 3u);
  EXPECT_EQ(round_trip(AllowanceUpdate{0.02, 3}).task, 3u);
}

TEST(Messages, ControlFramesRejectTruncation) {
  const std::vector<Message> frames = {
      net::AddTask{1, control_spec(5.0)},
      net::RemoveTask{1},
      net::UpdateTask{1, control_spec(6.0)},
      net::ControlReply{control::ControlStatus::kOk, 1, 1, "msg"},
      net::TaskAttach{1, 2, 3.0, 0.01, 0.2, 20, 40, 1000},
      net::TaskDetach{1, 2},
  };
  for (const auto& frame : frames) {
    auto bytes = net::encode(frame);
    bytes.pop_back();
    EXPECT_FALSE(net::decode(as_bytes(bytes)).has_value())
        << "frame type index " << frame.index();
  }
  // ListTasks is a bare type byte; trailing junk is the malformed case.
  auto list = net::encode(Message{net::ListTasks{}});
  list.push_back(std::byte{0});
  EXPECT_FALSE(net::decode(as_bytes(list)).has_value());
}

TEST(Messages, ControlRequestClassifier) {
  EXPECT_TRUE(net::is_control_request(net::AddTask{1, control_spec(5.0)}));
  EXPECT_TRUE(net::is_control_request(net::RemoveTask{1}));
  EXPECT_TRUE(net::is_control_request(net::UpdateTask{1, control_spec(5.0)}));
  EXPECT_TRUE(net::is_control_request(net::ListTasks{}));
  EXPECT_FALSE(net::is_control_request(Hello{0}));
  EXPECT_FALSE(net::is_control_request(StatsRequest{}));
  EXPECT_FALSE(net::is_control_request(net::ControlReply{}));
  EXPECT_FALSE(net::is_control_request(net::TaskListReply{}));
}

TEST(Socket, LoopbackEcho) {
  TcpListener listener(0);
  std::thread server([&listener] {
    auto conn = listener.accept();
    ASSERT_TRUE(conn.has_value());
    std::array<std::byte, 64> buf;
    const auto n = conn->recv_some(buf);
    ASSERT_TRUE(n.has_value());
    conn->send_all(std::span<const std::byte>(buf.data(), *n));
  });
  auto client = TcpConnection::connect("127.0.0.1", listener.port());
  const std::vector<std::byte> msg{std::byte{0xAB}, std::byte{0xCD}};
  ASSERT_TRUE(client.send_all(msg));
  std::array<std::byte, 64> buf;
  const auto n = client.recv_some(buf);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(buf[0], std::byte{0xAB});
  server.join();
}

TEST(Socket, ConnectToClosedPortThrows) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }  // listener closed
  EXPECT_THROW(TcpConnection::connect("127.0.0.1", dead_port),
               std::system_error);
}

TEST(Socket, ConnectTimeoutIsBounded) {
  // A listener that never accepts: once its accept backlog (64) is full the
  // kernel stops answering SYNs, so a deadline-less connect would sit in
  // SYN retransmission for minutes. With timeout_ms set, the attempt must
  // fail on the deadline instead (or immediately, on stacks that RST).
  TcpListener listener(0);
  std::vector<TcpConnection> filler;
  bool failed = false;
  const auto start = std::chrono::steady_clock::now();
  try {
    for (int i = 0; i < 100; ++i) {
      filler.push_back(
          TcpConnection::connect("127.0.0.1", listener.port(), 250));
    }
  } catch (const std::system_error&) {
    failed = true;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(failed);
  EXPECT_LT(elapsed.count(), 10000);
}

TEST(Socket, TryConnectReportsFailureWithoutThrowing) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }  // listener closed
  EXPECT_FALSE(
      TcpConnection::try_connect("127.0.0.1", dead_port, 200).has_value());
  TcpListener listener(0);
  const auto conn =
      TcpConnection::try_connect("127.0.0.1", listener.port(), 200);
  ASSERT_TRUE(conn.has_value());
  EXPECT_TRUE(conn->valid());
}

TEST(Socket, NonblockingRecvReturnsNulloptWhenIdle) {
  TcpListener listener(0);
  auto client = TcpConnection::connect("127.0.0.1", listener.port());
  auto served = listener.accept();
  ASSERT_TRUE(served.has_value());
  client.set_nonblocking(true);
  std::array<std::byte, 8> buf;
  EXPECT_FALSE(client.recv_some(buf).has_value());
}

// Nagle must be off on every connect path — deadline-less, with timeout, and
// on accepted sockets — or heartbeat/poll frames sit in the kernel for an
// RTT and the liveness math in the coordinator drifts.
TEST(Socket, ConnectedSocketsHaveNodelay) {
  const auto nodelay_on = [](int fd) {
    int flag = 0;
    socklen_t len = sizeof(flag);
    EXPECT_EQ(::getsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &flag, &len), 0);
    return flag != 0;
  };
  TcpListener listener(0);
  auto plain = TcpConnection::connect("127.0.0.1", listener.port());
  auto accepted_plain = listener.accept();
  ASSERT_TRUE(accepted_plain.has_value());
  auto timed = TcpConnection::connect("127.0.0.1", listener.port(), 500);
  auto accepted_timed = listener.accept();
  ASSERT_TRUE(accepted_timed.has_value());
  EXPECT_TRUE(nodelay_on(plain.fd()));
  EXPECT_TRUE(nodelay_on(timed.fd()));
  EXPECT_TRUE(nodelay_on(accepted_plain->fd()));
  EXPECT_TRUE(nodelay_on(accepted_timed->fd()));
}

namespace {
void eintr_noop_handler(int) {}
}  // namespace

// connect_with_timeout's poll(2) wait must retry across EINTR (shrinking the
// remaining budget) instead of reporting a connect failure. A SIGALRM
// interval timer storms this thread while a deadline'd connect completes
// against a live listener, and while another attempt times out against a
// backlog-saturated one — both outcomes must match the storm-free behavior.
TEST(Socket, ConnectRetriesAcrossEintr) {
  struct sigaction storm {};
  storm.sa_handler = eintr_noop_handler;  // no SA_RESTART: syscalls see EINTR
  sigemptyset(&storm.sa_mask);
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGALRM, &storm, &previous), 0);
  itimerval interval{};
  interval.it_interval.tv_usec = 2000;
  interval.it_value.tv_usec = 2000;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &interval, nullptr), 0);

  // Live listener: the connect must succeed despite interrupted polls.
  {
    TcpListener listener(0);
    auto conn = TcpConnection::connect("127.0.0.1", listener.port(), 2000);
    EXPECT_TRUE(conn.valid());
  }

  // Saturated backlog: the deadline must still bound the attempt — EINTR
  // retries shrink the remaining budget rather than restarting it.
  {
    TcpListener listener(0);
    std::vector<TcpConnection> filler;
    bool failed = false;
    const auto start = std::chrono::steady_clock::now();
    try {
      for (int i = 0; i < 100; ++i) {
        filler.push_back(
            TcpConnection::connect("127.0.0.1", listener.port(), 250));
      }
    } catch (const std::system_error&) {
      failed = true;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_TRUE(failed);
    EXPECT_LT(elapsed.count(), 10000);
  }

  itimerval off{};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &off, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGALRM, &previous, nullptr), 0);
}

// End-to-end distributed session: one coordinator, three monitors over
// localhost TCP. Monitor 0 carries a sustained violation window; the other
// two stay quiet. The coordinator must see global polls and, because the
// aggregate crosses T, record at least one alert.
TEST(NetIntegration, CoordinatorAndMonitorsDetectViolation) {
  constexpr Tick kTicks = 400;
  net::CoordinatorNodeOptions copt;
  copt.monitors = 3;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.03;
  net::CoordinatorNode coordinator(copt);

  std::vector<std::unique_ptr<CallableSource>> sources;
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick t) { return (t >= 200 && t < 260) ? 20.0 : 0.5; }, kTicks));
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick) { return 0.5; }, kTicks));
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick) { return 0.5; }, kTicks));

  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (MonitorId id = 0; id < 3; ++id) {
    net::MonitorNodeOptions mopt;
    mopt.id = id;
    mopt.coordinator_port = coordinator.port();
    mopt.local_threshold = 10.0 / 3.0;
    mopt.sampler.error_allowance = 0.01;
    mopt.sampler.patience = 3;
    mopt.sampler.max_interval = 8;
    mopt.ticks = kTicks;
    mopt.updating_period = 100;
    mopt.tick_micros = 300;
    nodes.push_back(
        std::make_unique<net::MonitorNode>(mopt, *sources[id]));
  }

  std::thread coord_thread([&coordinator] { coordinator.run(); });
  std::vector<std::thread> monitor_threads;
  monitor_threads.reserve(nodes.size());
  for (auto& node : nodes) {
    monitor_threads.emplace_back([&node] { node->run(); });
  }
  for (auto& t : monitor_threads) t.join();
  coord_thread.join();

  EXPECT_GT(coordinator.global_polls(), 0);
  ASSERT_FALSE(coordinator.alerts().empty());
  for (const auto& alert : coordinator.alerts()) {
    EXPECT_GT(alert.value, 10.0);
  }
  // Every monitor reported its op totals on Bye.
  EXPECT_EQ(coordinator.reported_ops().size(), 3u);
  // Monitors saved ops versus periodic sampling on the quiet stretches.
  for (const auto& [id, ops] : coordinator.reported_ops()) {
    EXPECT_GT(ops, 0);
    EXPECT_LT(ops, kTicks);
  }
}

// The VOLLEY_POLL_LOOP escape hatch: the pre-reactor poll(2) loops must
// still carry a full session end to end (all three roles forced legacy via
// the options override, independent of the environment).
TEST(NetIntegration, LegacyPollLoopPathStillCompletesSession) {
  constexpr Tick kTicks = 300;
  net::CoordinatorNodeOptions copt;
  copt.monitors = 1;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.02;
  copt.poll_loop = 1;  // force the legacy loop
  net::CoordinatorNode coordinator(copt);

  net::ChaosProxyOptions popt;
  popt.upstream_port = coordinator.port();
  popt.poll_loop = 1;
  net::ChaosProxy proxy(popt);

  CallableSource spiky(
      [](Tick t) { return (t >= 100 && t < 160) ? 20.0 : 0.5; }, kTicks);
  net::MonitorNodeOptions mopt;
  mopt.id = 0;
  mopt.coordinator_port = proxy.port();
  mopt.local_threshold = 10.0;
  mopt.ticks = kTicks;
  mopt.updating_period = 100;
  mopt.tick_micros = 300;
  mopt.poll_loop = 1;
  net::MonitorNode monitor(mopt, spiky);

  std::thread ct([&coordinator] { coordinator.run(); });
  std::thread pt([&proxy] { proxy.run(); });
  std::thread mt([&monitor] { monitor.run(); });
  mt.join();
  ct.join();
  proxy.request_stop();
  pt.join();

  EXPECT_GT(coordinator.global_polls(), 0);
  EXPECT_FALSE(coordinator.alerts().empty());
  EXPECT_EQ(coordinator.reported_ops().size(), 1u);
  EXPECT_GT(proxy.stats().forwarded_frames, 0);
  // The legacy loops turn on a cadence whether or not traffic flows.
  EXPECT_GT(proxy.loop_wakeups(), 0);
  EXPECT_GT(coordinator.loop_wakeups(), 0);
}

// Multi-loop coordinator: with VOLLEY_NET_THREADS-style sharding forced to
// three loops, a full three-monitor session must complete exactly as on one
// loop, every session must be pinned to a worker loop (never the home loop,
// which keeps protocol state), and the round-robin must spread sessions
// across both workers.
TEST(NetIntegration, MultiLoopFleetPinsSessionsToWorkerLoops) {
  constexpr Tick kTicks = 400;
  net::CoordinatorNodeOptions copt;
  copt.monitors = 3;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.03;
  copt.poll_loop = 0;    // loop sharding needs the reactor runtime, so the
                         // test must hold even under VOLLEY_POLL_LOOP=1 CI
  copt.net_threads = 3;  // home loop + two worker loops
  net::CoordinatorNode coordinator(copt);
  ASSERT_EQ(coordinator.net_threads(), 3u);

  std::vector<std::unique_ptr<CallableSource>> sources;
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick t) { return (t >= 200 && t < 260) ? 20.0 : 0.5; }, kTicks));
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick) { return 0.5; }, kTicks));
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick) { return 0.5; }, kTicks));

  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (MonitorId id = 0; id < 3; ++id) {
    net::MonitorNodeOptions mopt;
    mopt.id = id;
    mopt.coordinator_port = coordinator.port();
    mopt.local_threshold = 10.0 / 3.0;
    mopt.ticks = kTicks;
    mopt.updating_period = 100;
    mopt.tick_micros = 300;
    nodes.push_back(std::make_unique<net::MonitorNode>(mopt, *sources[id]));
  }

  std::thread coord_thread([&coordinator] { coordinator.run(); });
  std::vector<std::thread> monitor_threads;
  for (auto& node : nodes) {
    monitor_threads.emplace_back([&node] { node->run(); });
  }
  for (auto& t : monitor_threads) t.join();
  coord_thread.join();

  EXPECT_GT(coordinator.global_polls(), 0);
  EXPECT_FALSE(coordinator.alerts().empty());
  EXPECT_EQ(coordinator.reported_ops().size(), 3u);

  const auto& loops = coordinator.session_loops();
  ASSERT_EQ(loops.size(), 3u);
  std::set<std::size_t> used;
  for (const auto& [id, loop] : loops) {
    EXPECT_GE(loop, 1u) << "monitor " << id << " landed on the home loop";
    EXPECT_LT(loop, 3u);
    used.insert(loop);
  }
  EXPECT_EQ(used.size(), 2u) << "round-robin left a worker loop empty";
}

// The allowance reallocation path: monitors with different volatility run a
// session with StatsReports; the coordinator must issue AllowanceUpdates
// (observable as reallocations > 0) without breaking the session.
TEST(NetIntegration, AllowanceReallocationHappens) {
  constexpr Tick kTicks = 500;
  net::CoordinatorNodeOptions copt;
  copt.monitors = 2;
  copt.global_threshold = 100.0;
  copt.error_allowance = 0.04;
  copt.adaptive_allocation = true;
  net::CoordinatorNode coordinator(copt);

  CallableSource quiet([](Tick) { return 0.1; }, kTicks);
  CallableSource wiggly(
      [](Tick t) { return 5.0 + 4.0 * ((t % 7) / 6.0); }, kTicks);

  net::MonitorNodeOptions m0;
  m0.id = 0;
  m0.coordinator_port = coordinator.port();
  m0.local_threshold = 50.0;
  m0.ticks = kTicks;
  m0.updating_period = 120;
  m0.tick_micros = 200;
  net::MonitorNodeOptions m1 = m0;
  m1.id = 1;
  net::MonitorNode node0(m0, quiet), node1(m1, wiggly);

  std::thread ct([&coordinator] { coordinator.run(); });
  std::thread t0([&node0] { node0.run(); });
  std::thread t1([&node1] { node1.run(); });
  t0.join();
  t1.join();
  ct.join();

  EXPECT_GT(coordinator.reallocations(), 0);
}

// Introspection endpoint: a stats client connects mid-session, sends
// StatsRequest instead of Hello, gets one StatsReply with the metrics
// snapshot (and the trace export), and the monitoring session is untouched
// — the stats client never counts toward the expected monitors.
TEST(NetIntegration, StatsEndpointServesMetricsMidSession) {
  constexpr Tick kTicks = 1500;
  net::CoordinatorNodeOptions copt;
  copt.monitors = 2;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.03;
  net::CoordinatorNode coordinator(copt);

  CallableSource hot(
      [](Tick t) { return (t % 100 < 20) ? 20.0 : 0.5; }, kTicks);
  CallableSource quiet([](Tick) { return 0.5; }, kTicks);

  net::MonitorNodeOptions m0;
  m0.id = 0;
  m0.coordinator_port = coordinator.port();
  m0.local_threshold = 5.0;
  m0.sampler.patience = 3;
  m0.sampler.max_interval = 8;
  m0.ticks = kTicks;
  m0.updating_period = 300;
  m0.tick_micros = 300;
  net::MonitorNodeOptions m1 = m0;
  m1.id = 1;
  net::MonitorNode node0(m0, hot), node1(m1, quiet);

  std::thread ct([&coordinator] { coordinator.run(); });
  std::thread t0([&node0] { node0.run(); });
  std::thread t1([&node1] { node1.run(); });

  // Let the session get going, then query it from the side.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto conn = TcpConnection::connect("127.0.0.1", coordinator.port(), 2000);
  StatsRequest request;
  request.flags = StatsRequest::kIncludeTrace;
  ASSERT_TRUE(conn.send_all(frame_payload(net::encode(Message{request}))));

  FrameReader reader;
  std::array<std::byte, 8192> buf;
  std::optional<Message> reply;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (!reply && std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{conn.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 100);
    if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR))) continue;
    const auto n = conn.recv_some(buf);
    if (!n || *n == 0) break;
    reader.feed(std::span<const std::byte>(buf.data(), *n));
    if (auto payload = reader.next()) reply = net::decode(as_bytes(*payload));
  }
  ASSERT_TRUE(reply.has_value()) << "no StatsReply within the deadline";
  const auto* stats = std::get_if<StatsReply>(&*reply);
  ASSERT_NE(stats, nullptr);
  // The Prometheus snapshot names the net-runtime instruments and the trace
  // export carries events from the in-process monitors.
  EXPECT_NE(stats->metrics.find("volley_net_stats_requests_total"),
            std::string::npos);
  EXPECT_NE(stats->metrics.find("volley_sampler_observations_total"),
            std::string::npos);
  EXPECT_FALSE(stats->trace_jsonl.empty());
  conn.close();

  t0.join();
  t1.join();
  ct.join();

  // The session completed normally: both real monitors said Bye and the
  // stats client never became a phantom third monitor.
  EXPECT_EQ(coordinator.reported_ops().size(), 2u);
  EXPECT_GT(coordinator.global_polls(), 0);
}

// --- failure model -------------------------------------------------------
//
// The scripted scenarios below drive the coordinator with FakeMonitor — a
// synchronous protocol client controlled from the test thread — so the
// exact timing of deaths, silences, and responses is deterministic.

class FakeMonitor {
 public:
  FakeMonitor(std::uint16_t port, MonitorId id, bool resume = false)
      : conn_(TcpConnection::connect("127.0.0.1", port, 2000)), id_(id) {
    send(Hello{id, resume});
  }

  void send(const Message& message) {
    EXPECT_TRUE(conn_.send_all(frame_payload(net::encode(message))))
        << "FakeMonitor " << id_ << ": send failed";
  }

  void close() { conn_.close(); }

  /// Reads until a message of type T arrives (skipping any other type);
  /// fails the test and returns T{} on timeout or peer close.
  template <typename T>
  T await(int timeout_ms = 2500) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::array<std::byte, 4096> buf;
    for (;;) {
      while (auto payload = reader_.next()) {
        const auto message = net::decode(as_bytes(*payload));
        if (message && std::holds_alternative<T>(*message)) {
          return std::get<T>(*message);
        }
      }
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) break;
      pollfd pfd{conn_.fd(), POLLIN, 0};
      ::poll(&pfd, 1, static_cast<int>(remaining));
      if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const auto n = conn_.recv_some(buf);
      if (n && *n == 0) {
        ADD_FAILURE() << "FakeMonitor " << id_ << ": peer closed while "
                      << "awaiting a message";
        return T{};
      }
      if (n && *n > 0) {
        reader_.feed(std::span<const std::byte>(buf.data(), *n));
      }
    }
    ADD_FAILURE() << "FakeMonitor " << id_ << ": timed out awaiting message";
    return T{};
  }

 private:
  TcpConnection conn_;
  FrameReader reader_;
  MonitorId id_;
};

// Scenario: a monitor dies mid-poll. The in-flight poll must complete with
// the dead monitor's last known value (the simulator's poll_response_loss
// fallback), and past the staleness bound the monitor is declared dead, its
// allowance reclaimed for the survivors, and aggregation continues without
// it.
TEST(NetFaults, MonitorDeathStalePollThenAllowanceReclaim) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 3;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.03;
  copt.poll_timeout_ms = 3000;
  copt.heartbeat_timeout_ms = 3000;  // deaths come from EOF, not silence
  copt.staleness_bound_ms = 250;
  copt.idle_timeout_ms = 10000;
  net::CoordinatorNode coordinator(copt);
  std::thread coord_thread([&coordinator] { coordinator.run(); });

  FakeMonitor f0(coordinator.port(), 0);
  FakeMonitor f1(coordinator.port(), 1);
  FakeMonitor f2(coordinator.port(), 2);

  // Poll 1: all three answer; monitor 0 carries the violation.
  f0.send(LocalViolation{0, 5, 12.0});
  auto poll = f0.await<PollRequest>();
  f0.send(PollResponse{0, poll.poll_id, 5, 20.0});
  poll = f1.await<PollRequest>();
  f1.send(PollResponse{1, poll.poll_id, 5, 1.0});
  poll = f2.await<PollRequest>();
  f2.send(PollResponse{2, poll.poll_id, 5, 1.0});

  // Poll 2: monitor 0 reports a violation, then dies before answering.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  f0.send(LocalViolation{0, 10, 12.0});
  f0.close();
  poll = f1.await<PollRequest>();
  f1.send(PollResponse{1, poll.poll_id, 10, 1.0});
  poll = f2.await<PollRequest>();
  f2.send(PollResponse{2, poll.poll_id, 10, 1.0});

  // Past the staleness bound the dead monitor's allowance is reclaimed:
  // survivors get pushed their rescaled share (0.03/2 each, from 0.03/3).
  const auto update1 = f1.await<AllowanceUpdate>();
  EXPECT_NEAR(update1.error_allowance, 0.015, 1e-9);
  const auto update2 = f2.await<AllowanceUpdate>();
  EXPECT_NEAR(update2.error_allowance, 0.015, 1e-9);

  // Poll 3: the survivors alone cross T; the dead monitor is excluded.
  f1.send(LocalViolation{1, 20, 8.0});
  poll = f1.await<PollRequest>();
  f1.send(PollResponse{1, poll.poll_id, 20, 8.0});
  poll = f2.await<PollRequest>();
  f2.send(PollResponse{2, poll.poll_id, 20, 5.0});

  f1.send(Bye{1, 50, 5});
  f2.send(Bye{2, 60, 6});
  f1.await<Shutdown>();
  f2.await<Shutdown>();
  coord_thread.join();

  EXPECT_EQ(coordinator.global_polls(), 3);
  ASSERT_EQ(coordinator.alerts().size(), 3u);
  EXPECT_NEAR(coordinator.alerts()[0].value, 22.0, 1e-9);
  // Poll 2 settled with monitor 0's last known value: 1 + 1 + stale 20.
  EXPECT_NEAR(coordinator.alerts()[1].value, 22.0, 1e-9);
  // Poll 3 excluded the dead monitor entirely: 8 + 5.
  EXPECT_NEAR(coordinator.alerts()[2].value, 13.0, 1e-9);

  const auto& faults = coordinator.fault_stats();
  EXPECT_EQ(faults.stale_polls, 1);
  EXPECT_EQ(faults.stale_values, 1);
  EXPECT_GE(faults.suspected, 1);
  EXPECT_EQ(faults.declared_dead, 1);
  EXPECT_GE(faults.allowance_reclaims, 1);
  EXPECT_EQ(coordinator.reported_ops().size(), 2u);  // survivors' Byes only
}

// Scenario: the coordinator crashes mid-run (request_stop drops the
// connections without a Shutdown) and a successor comes up on the same
// port. The monitor must ride it out in degraded mode, reconnect with
// backoff, resync via Hello{resume}, and complete the session.
TEST(NetFaults, CoordinatorRestartMonitorReconnectsAndResumes) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 1;
  copt.global_threshold = 100.0;
  copt.error_allowance = 0.02;
  auto first = std::make_unique<net::CoordinatorNode>(copt);
  const std::uint16_t port = first->port();
  std::thread first_thread([&first] { first->run(); });

  constexpr Tick kTicks = 1500;
  CallableSource quiet([](Tick) { return 0.5; }, kTicks);
  net::MonitorNodeOptions mopt;
  mopt.id = 0;
  mopt.coordinator_port = port;
  mopt.local_threshold = 50.0;
  mopt.ticks = kTicks;
  mopt.updating_period = 400;
  mopt.tick_micros = 400;  // ~600 ms run
  mopt.heartbeat_interval_ms = 50;
  mopt.coordinator_timeout_ms = 400;
  mopt.connect_timeout_ms = 300;
  mopt.reconnect_backoff_ms = 20;
  mopt.reconnect_backoff_max_ms = 100;
  mopt.max_reconnect_attempts = 200;
  net::MonitorNode monitor(mopt, quiet);
  std::thread monitor_thread([&monitor] { monitor.run(); });

  // Crash the first coordinator mid-run; leave a gap with no listener so
  // the monitor provably runs degraded and retries with backoff.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  first->request_stop();
  first_thread.join();
  first.reset();  // closes listener + connection: the monitor sees EOF
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  copt.port = port;
  net::CoordinatorNode successor(copt);
  std::thread successor_thread([&successor] { successor.run(); });

  monitor_thread.join();
  successor_thread.join();

  EXPECT_GE(monitor.reconnects(), 1);
  EXPECT_GT(monitor.degraded_ticks(), 0);
  EXPECT_FALSE(monitor.coordinator_lost());
  // The successor saw the resumed session through to its Bye.
  EXPECT_EQ(successor.reported_ops().size(), 1u);
  EXPECT_GE(successor.fault_stats().reconnects, 1);
}

// poll_timeout_ms: a poll blocked on a live-but-unresponsive monitor must
// settle with the responses that arrived (no last known value -> simply
// aggregate without the silent monitor).
TEST(NetFaults, PollTimeoutSettlesWithPartialResponses) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 2;
  copt.global_threshold = 3.0;
  copt.error_allowance = 0.02;
  copt.poll_timeout_ms = 120;
  copt.heartbeat_timeout_ms = 5000;  // the silent monitor stays "active"
  copt.staleness_bound_ms = 5000;
  copt.idle_timeout_ms = 10000;
  net::CoordinatorNode coordinator(copt);
  std::thread coord_thread([&coordinator] { coordinator.run(); });

  FakeMonitor f0(coordinator.port(), 0);
  FakeMonitor f1(coordinator.port(), 1);
  f0.send(LocalViolation{0, 3, 5.0});
  const auto poll = f0.await<PollRequest>();
  f0.send(PollResponse{0, poll.poll_id, 3, 5.0});
  f1.await<PollRequest>();  // received, deliberately never answered

  // Give the poll time to hit poll_timeout_ms, then wind the session down.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  f0.send(Bye{0, 10, 1});
  f1.send(Bye{1, 12, 2});
  f0.await<Shutdown>();
  f1.await<Shutdown>();
  coord_thread.join();

  EXPECT_EQ(coordinator.global_polls(), 1);
  ASSERT_EQ(coordinator.alerts().size(), 1u);
  EXPECT_NEAR(coordinator.alerts()[0].value, 5.0, 1e-9);
  // The non-responder had no last known value, so nothing was stale.
  EXPECT_EQ(coordinator.fault_stats().stale_polls, 0);
}

// idle_timeout_ms: a session that goes fully silent (here: one of two
// monitors joins, then nothing) must abort instead of hanging forever.
TEST(NetFaults, IdleTimeoutAbortsSilentSession) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 2;
  copt.idle_timeout_ms = 150;
  copt.heartbeat_timeout_ms = 10000;
  copt.staleness_bound_ms = 10000;
  net::CoordinatorNode coordinator(copt);
  const auto start = std::chrono::steady_clock::now();
  std::thread coord_thread([&coordinator] { coordinator.run(); });
  FakeMonitor f0(coordinator.port(), 0);  // joins, then never speaks again
  coord_thread.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5000);
  EXPECT_TRUE(coordinator.reported_ops().empty());
}

// Chaos proxy, transport fault: a mid-stream cut after N frames. The
// monitor must notice the dead link, reconnect through the proxy, resume
// its session, and still deliver its Bye.
TEST(NetFaults, ChaosProxyCutForcesReconnect) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 1;
  copt.global_threshold = 100.0;
  copt.error_allowance = 0.02;
  copt.heartbeat_timeout_ms = 1500;
  copt.staleness_bound_ms = 6000;
  net::CoordinatorNode coordinator(copt);

  net::ChaosProxyOptions popt;
  popt.upstream_port = coordinator.port();
  popt.plan.disconnect_after_frames = 40;
  popt.plan.max_disconnects = 1;
  net::ChaosProxy proxy(popt);

  constexpr Tick kTicks = 2000;
  CallableSource quiet([](Tick) { return 0.5; }, kTicks);
  net::MonitorNodeOptions mopt;
  mopt.id = 0;
  mopt.coordinator_port = proxy.port();
  mopt.local_threshold = 50.0;
  mopt.ticks = kTicks;
  mopt.updating_period = 500;
  mopt.tick_micros = 400;           // ~800 ms run
  mopt.heartbeat_interval_ms = 10;  // frames flow fast: the cut lands early
  mopt.coordinator_timeout_ms = 500;
  mopt.connect_timeout_ms = 300;
  mopt.reconnect_backoff_ms = 20;
  mopt.reconnect_backoff_max_ms = 100;
  net::MonitorNode monitor(mopt, quiet);

  std::thread coord_thread([&coordinator] { coordinator.run(); });
  std::thread proxy_thread([&proxy] { proxy.run(); });
  std::thread monitor_thread([&monitor] { monitor.run(); });
  monitor_thread.join();
  coord_thread.join();
  proxy.request_stop();
  proxy_thread.join();

  EXPECT_EQ(proxy.stats().disconnects, 1);
  EXPECT_GE(monitor.reconnects(), 1);
  EXPECT_FALSE(monitor.coordinator_lost());
  EXPECT_GE(coordinator.fault_stats().reconnects, 1);
  EXPECT_EQ(coordinator.reported_ops().size(), 1u);
}

// No-migration invariant: with three loops and a single monitor, the first
// connection round-robins onto worker loop 1. A chaos-proxy cut then forces
// a reconnect — if session placement were re-drawn per connection the second
// accept would land on loop 2, so the final map pins the sticky assignment.
TEST(NetFaults, MultiLoopReconnectKeepsSessionOnItsLoop) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 1;
  copt.global_threshold = 100.0;
  copt.error_allowance = 0.02;
  copt.heartbeat_timeout_ms = 1500;
  copt.staleness_bound_ms = 6000;
  copt.poll_loop = 0;  // sharding is reactor-only: pin past VOLLEY_POLL_LOOP
  copt.net_threads = 3;
  net::CoordinatorNode coordinator(copt);

  net::ChaosProxyOptions popt;
  popt.upstream_port = coordinator.port();
  popt.plan.disconnect_after_frames = 40;
  popt.plan.max_disconnects = 1;
  net::ChaosProxy proxy(popt);

  constexpr Tick kTicks = 2000;
  CallableSource quiet([](Tick) { return 0.5; }, kTicks);
  net::MonitorNodeOptions mopt;
  mopt.id = 0;
  mopt.coordinator_port = proxy.port();
  mopt.local_threshold = 50.0;
  mopt.ticks = kTicks;
  mopt.updating_period = 500;
  mopt.tick_micros = 400;
  mopt.heartbeat_interval_ms = 10;
  mopt.coordinator_timeout_ms = 500;
  mopt.connect_timeout_ms = 300;
  mopt.reconnect_backoff_ms = 20;
  mopt.reconnect_backoff_max_ms = 100;
  net::MonitorNode monitor(mopt, quiet);

  std::thread coord_thread([&coordinator] { coordinator.run(); });
  std::thread proxy_thread([&proxy] { proxy.run(); });
  std::thread monitor_thread([&monitor] { monitor.run(); });
  monitor_thread.join();
  coord_thread.join();
  proxy.request_stop();
  proxy_thread.join();

  EXPECT_GE(monitor.reconnects(), 1);
  EXPECT_GE(coordinator.fault_stats().reconnects, 1);
  EXPECT_EQ(coordinator.reported_ops().size(), 1u);
  const auto& loops = coordinator.session_loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops.at(0), 1u);  // still on its first-draw loop post-reconnect
}

// Chaos proxy, message faults: seeded frame drops, delays, and partial
// writes on every link. A sustained violation must still be detected (the
// stale-value fallback and repeated reports absorb the losses), and the
// session must complete for all monitors.
TEST(NetFaults, ChaosProxyLossyLinkStillDetects) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 2;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.03;
  copt.poll_timeout_ms = 80;
  copt.heartbeat_timeout_ms = 1000;
  copt.staleness_bound_ms = 6000;
  net::CoordinatorNode coordinator(copt);

  net::ChaosProxyOptions popt;
  popt.upstream_port = coordinator.port();
  popt.plan.message_loss.violation_report_loss = 0.25;
  popt.plan.message_loss.poll_response_loss = 0.15;
  popt.plan.message_loss.seed = 7;
  popt.plan.heartbeat_loss = 0.2;
  popt.plan.delay_prob = 0.2;
  popt.plan.delay_ms = 10;
  popt.plan.partial_write_prob = 0.2;
  net::ChaosProxy proxy(popt);

  constexpr Tick kTicks = 1500;
  CallableSource spiky(
      [](Tick t) { return (t >= 400 && t < 1200) ? 30.0 : 0.5; }, kTicks);
  CallableSource quiet([](Tick) { return 0.5; }, kTicks);

  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (MonitorId id = 0; id < 2; ++id) {
    net::MonitorNodeOptions mopt;
    mopt.id = id;
    mopt.coordinator_port = proxy.port();
    mopt.local_threshold = 5.0;
    mopt.ticks = kTicks;
    mopt.updating_period = 500;
    mopt.tick_micros = 400;  // violation window ~320 ms: several polls
    mopt.heartbeat_interval_ms = 50;
    mopt.coordinator_timeout_ms = 600;
    mopt.connect_timeout_ms = 300;
    mopt.reconnect_backoff_ms = 20;
    mopt.reconnect_backoff_max_ms = 100;
    nodes.push_back(std::make_unique<net::MonitorNode>(
        mopt, id == 0 ? static_cast<const MetricSource&>(spiky) : quiet));
  }

  std::thread coord_thread([&coordinator] { coordinator.run(); });
  std::thread proxy_thread([&proxy] { proxy.run(); });
  std::vector<std::thread> monitor_threads;
  for (auto& node : nodes) {
    monitor_threads.emplace_back([&node] { node->run(); });
  }
  for (auto& t : monitor_threads) t.join();
  coord_thread.join();
  proxy.request_stop();
  proxy_thread.join();

  EXPECT_GT(coordinator.global_polls(), 0);
  EXPECT_FALSE(coordinator.alerts().empty());
  EXPECT_EQ(coordinator.reported_ops().size(), 2u);
  const auto& stats = proxy.stats();
  EXPECT_GT(stats.forwarded_frames, 0);
  EXPECT_GT(stats.dropped_violations + stats.dropped_responses +
                stats.dropped_heartbeats,
            0);
  EXPECT_GT(stats.delayed_frames + stats.partial_writes, 0);
}

// Idle-CPU regression for the reactor path: a proxy with a live but silent
// link must perform ZERO event-loop turns across a quiet window (the legacy
// loop turned every 5 ms — ~60 turns in the same window).
TEST(NetFaults, IdleChaosProxyPerformsNoWakeups) {
  TcpListener upstream(0);
  net::ChaosProxyOptions popt;
  popt.upstream_port = upstream.port();
  popt.poll_loop = 0;  // force the reactor, whatever the environment says
  net::ChaosProxy proxy(popt);
  std::thread proxy_thread([&proxy] { proxy.run(); });

  // Establish a proxied link and push one frame through it so the test
  // measures an idle *session*, not an unused listener.
  auto client = TcpConnection::connect("127.0.0.1", proxy.port(), 2000);
  auto accepted = upstream.accept();
  ASSERT_TRUE(accepted.has_value());
  const auto framed = frame_payload(net::encode(Message{Hello{1}}));
  ASSERT_TRUE(client.send_all(framed));
  std::array<std::byte, 256> buf;
  std::size_t received = 0;
  while (received < framed.size()) {
    const auto n = accepted->recv_some(buf);  // blocking socket
    ASSERT_TRUE(n.has_value());
    ASSERT_GT(*n, 0u);
    received += *n;
  }

  // Let the dispatch that forwarded the frame settle, then sample.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto before = proxy.loop_wakeups();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto after = proxy.loop_wakeups();
  EXPECT_EQ(after, before) << "idle reactor proxy must sleep in epoll";

  proxy.request_stop();
  proxy_thread.join();
  EXPECT_EQ(proxy.stats().forwarded_frames, 1);
}

// --- control plane, end to end -------------------------------------------

/// One-shot control client: connect, send `request`, await a reply of type
/// T (the coordinator answers control frames pre-Hello and disconnects).
template <typename T>
std::optional<T> control_round_trip(std::uint16_t port,
                                    const Message& request,
                                    int timeout_ms = 2500) {
  auto conn = TcpConnection::connect("127.0.0.1", port, timeout_ms);
  if (!conn.send_all(frame_payload(net::encode(request)))) return std::nullopt;
  FrameReader reader;
  std::array<std::byte, 8192> buf;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{conn.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 100);
    if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR))) continue;
    const auto n = conn.recv_some(buf);
    if (!n || *n == 0) break;
    reader.feed(std::span<const std::byte>(buf.data(), *n));
    if (auto payload = reader.next()) {
      const auto reply = net::decode(as_bytes(*payload));
      if (reply && std::holds_alternative<T>(*reply)) {
        return std::get<T>(*reply);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

class NetControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_base_ = ::testing::TempDir() + "volley_net_registry_" +
                     std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  void TearDown() override {
    std::remove((registry_base_ + ".snapshot").c_str());
    std::remove((registry_base_ + ".snapshot.tmp").c_str());
    std::remove((registry_base_ + ".journal").c_str());
  }

  std::string registry_base_;
};

// The PR's acceptance scenario: a coordinator with three monitors runs the
// boot task; a control client registers a second task at runtime; the
// allowance is split and pushed to every monitor; both tasks raise alerts
// in the same session; and a restarted coordinator recovers the registry —
// both tasks, exact epochs — from the snapshot + journal.
TEST_F(NetControlTest, AddTaskReallocatesAlertsAndSurvivesRestart) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 3;
  copt.global_threshold = 10.0;  // boot task 0
  copt.error_allowance = 0.03;
  copt.poll_timeout_ms = 3000;
  copt.heartbeat_timeout_ms = 8000;
  copt.staleness_bound_ms = 8000;
  copt.idle_timeout_ms = 10000;
  copt.registry_path = registry_base_;
  auto coordinator = std::make_unique<net::CoordinatorNode>(copt);
  const std::uint16_t port = coordinator->port();
  std::thread coord_thread([&coordinator] { coordinator->run(); });

  FakeMonitor f0(port, 0);
  FakeMonitor f1(port, 1);
  FakeMonitor f2(port, 2);

  // Joining pushes the boot task's attach (the monitors' own boot seeding
  // makes it a no-op there, but on the wire it must carry epoch 1).
  const auto boot_attach = f0.await<net::TaskAttach>();
  EXPECT_EQ(boot_attach.task, kBootTaskId);
  EXPECT_EQ(boot_attach.epoch, kBootTaskEpoch);
  f1.await<net::TaskAttach>();
  f2.await<net::TaskAttach>();

  // A control client registers task 7 mid-session.
  TaskSpec second = control_spec(30.0);
  second.error_allowance = 0.06;
  const auto reply = control_round_trip<net::ControlReply>(
      port, net::AddTask{7, second});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, control::ControlStatus::kOk);
  EXPECT_EQ(reply->epoch, 2u);
  EXPECT_EQ(reply->registry_version, 2u);

  // Every monitor is attached to the new task with its even shares of the
  // threshold (30/3) and the task's error allowance (0.06/3).
  for (FakeMonitor* f : {&f0, &f1, &f2}) {
    const auto attach = f->await<net::TaskAttach>();
    EXPECT_EQ(attach.task, 7u);
    EXPECT_EQ(attach.epoch, 2u);
    EXPECT_NEAR(attach.local_threshold, 10.0, 1e-9);
    EXPECT_NEAR(attach.error_allowance, 0.02, 1e-9);
  }

  // ListTasks sees both tasks with their allowance splits.
  const auto list =
      control_round_trip<net::TaskListReply>(port, net::ListTasks{});
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->registry_version, 2u);
  ASSERT_EQ(list->tasks.size(), 2u);
  EXPECT_EQ(list->tasks[0].task, kBootTaskId);
  EXPECT_EQ(list->tasks[0].epoch, 1u);
  EXPECT_EQ(list->tasks[1].task, 7u);
  EXPECT_EQ(list->tasks[1].epoch, 2u);
  EXPECT_EQ(list->tasks[1].allowance_split.size(), 3u);

  // The boot task alerts: 20 + 1 + 1 crosses its threshold of 10.
  f0.send(LocalViolation{0, 5, 12.0, kBootTaskId});
  auto poll = f0.await<PollRequest>();
  EXPECT_EQ(poll.task, kBootTaskId);
  f0.send(PollResponse{0, poll.poll_id, 5, 20.0, kBootTaskId});
  poll = f1.await<PollRequest>();
  f1.send(PollResponse{1, poll.poll_id, 5, 1.0, kBootTaskId});
  poll = f2.await<PollRequest>();
  f2.send(PollResponse{2, poll.poll_id, 5, 1.0, kBootTaskId});

  // The new task alerts too: 20 + 20 + 5 crosses its threshold of 30.
  f1.send(LocalViolation{1, 9, 15.0, 7});
  poll = f1.await<PollRequest>();
  EXPECT_EQ(poll.task, 7u);
  f1.send(PollResponse{1, poll.poll_id, 9, 20.0, 7});
  poll = f0.await<PollRequest>();
  EXPECT_EQ(poll.task, 7u);
  f0.send(PollResponse{0, poll.poll_id, 9, 20.0, 7});
  poll = f2.await<PollRequest>();
  f2.send(PollResponse{2, poll.poll_id, 9, 5.0, 7});

  f0.send(Bye{0, 10, 1});
  f1.send(Bye{1, 10, 1});
  f2.send(Bye{2, 10, 1});
  f0.await<Shutdown>();
  f1.await<Shutdown>();
  f2.await<Shutdown>();
  coord_thread.join();

  ASSERT_EQ(coordinator->alerts().size(), 2u);
  EXPECT_EQ(coordinator->alerts()[0].task, kBootTaskId);
  EXPECT_NEAR(coordinator->alerts()[0].value, 22.0, 1e-9);
  EXPECT_EQ(coordinator->alerts()[1].task, 7u);
  EXPECT_NEAR(coordinator->alerts()[1].value, 45.0, 1e-9);
  EXPECT_EQ(coordinator->registry().version(), 2u);

  // Kill the coordinator and start a successor on the same registry path:
  // it must recover both tasks at their exact epochs from disk.
  coordinator.reset();
  net::CoordinatorNodeOptions ropt = copt;
  ropt.port = 0;
  ropt.global_threshold = 99.0;  // must NOT override the restored boot task
  net::CoordinatorNode successor(ropt);
  const auto& stats = successor.registry_load_stats();
  EXPECT_TRUE(stats.had_snapshot || stats.journal_ops > 0);
  EXPECT_TRUE(stats.journal_clean);
  EXPECT_EQ(successor.registry().version(), 2u);
  ASSERT_NE(successor.registry().find(kBootTaskId), nullptr);
  EXPECT_EQ(successor.registry().find(kBootTaskId)->epoch, 1u);
  EXPECT_DOUBLE_EQ(
      successor.registry().find(kBootTaskId)->spec.global_threshold, 10.0);
  ASSERT_NE(successor.registry().find(7), nullptr);
  EXPECT_EQ(successor.registry().find(7)->epoch, 2u);
  EXPECT_DOUBLE_EQ(successor.registry().find(7)->spec.global_threshold, 30.0);

  // A third incarnation reads the compacted snapshot alone (the successor's
  // load folded the journal into it) — still both tasks, same epochs.
  net::CoordinatorNode third(ropt);
  EXPECT_TRUE(third.registry_load_stats().had_snapshot);
  EXPECT_EQ(third.registry_load_stats().snapshot_tasks, 2u);
  EXPECT_EQ(third.registry_load_stats().journal_ops, 0u);
  EXPECT_EQ(third.registry().version(), 2u);
  ASSERT_NE(third.registry().find(7), nullptr);
  EXPECT_EQ(third.registry().find(7)->epoch, 2u);
}

// RemoveTask retires a live task: the monitors get TaskDetach with the
// removal epoch, the registry forgets the task, and a poll for it can no
// longer happen (the next ListTasks shows only the boot task).
TEST_F(NetControlTest, RemoveTaskDetachesMonitors) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = 1;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.02;
  copt.heartbeat_timeout_ms = 8000;
  copt.staleness_bound_ms = 8000;
  copt.idle_timeout_ms = 10000;
  net::CoordinatorNode coordinator(copt);  // no registry path: memory only
  std::thread coord_thread([&coordinator] { coordinator.run(); });

  FakeMonitor f0(coordinator.port(), 0);
  f0.await<net::TaskAttach>();  // boot task

  const auto added = control_round_trip<net::ControlReply>(
      coordinator.port(), net::AddTask{3, control_spec(5.0)});
  ASSERT_TRUE(added.has_value());
  EXPECT_EQ(added->epoch, 2u);
  const auto attach = f0.await<net::TaskAttach>();
  EXPECT_EQ(attach.task, 3u);

  const auto removed = control_round_trip<net::ControlReply>(
      coordinator.port(), net::RemoveTask{3});
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->status, control::ControlStatus::kOk);
  EXPECT_EQ(removed->epoch, 3u);
  const auto detach = f0.await<net::TaskDetach>();
  EXPECT_EQ(detach.task, 3u);
  EXPECT_EQ(detach.epoch, 3u);

  // Mutations against the gone task now fail cleanly.
  const auto again = control_round_trip<net::ControlReply>(
      coordinator.port(), net::RemoveTask{3});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status, control::ControlStatus::kNotFound);

  const auto list = control_round_trip<net::TaskListReply>(coordinator.port(),
                                                           net::ListTasks{});
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->tasks.size(), 1u);
  EXPECT_EQ(list->tasks[0].task, kBootTaskId);
  // boot add (1), task add (2), remove (3); the failed remove consumed
  // no epoch, so the version stays at 3.
  EXPECT_EQ(list->registry_version, 3u);

  f0.send(Bye{0, 1, 0});
  f0.await<Shutdown>();
  coord_thread.join();
}

}  // namespace
}  // namespace volley
