// Tests for offline log analysis and the persistence integration with the
// wire runtime: summaries, alerts, interval histograms, and an end-to-end
// MonitorNode session whose log replays consistently with its reported ops.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "core/metric_source.h"
#include "net/coordinator_node.h"
#include "net/monitor_node.h"
#include "storage/log_analysis.h"

namespace volley {
namespace {

SampleRecord rec(MonitorId m, Tick t, double v,
                 SampleReason r = SampleReason::kScheduled) {
  return SampleRecord{m, t, v, r};
}

TEST(SummarizeLog, PerMonitorStats) {
  const std::vector<SampleRecord> records{
      rec(0, 0, 1.0), rec(0, 2, 5.0), rec(0, 6, -1.0),
      rec(1, 0, 2.0), rec(1, 1, 2.0, SampleReason::kGlobalPoll)};
  const auto summaries = summarize_log(records);
  ASSERT_EQ(summaries.size(), 2u);
  const auto& s0 = summaries.at(0);
  EXPECT_EQ(s0.scheduled_ops, 3);
  EXPECT_EQ(s0.forced_ops, 0);
  EXPECT_EQ(s0.first_tick, 0);
  EXPECT_EQ(s0.last_tick, 6);
  EXPECT_DOUBLE_EQ(s0.mean_interval, 3.0);  // gaps 2 and 4
  EXPECT_EQ(s0.max_interval, 4);
  EXPECT_DOUBLE_EQ(s0.min_value, -1.0);
  EXPECT_DOUBLE_EQ(s0.max_value, 5.0);
  const auto& s1 = summaries.at(1);
  EXPECT_EQ(s1.scheduled_ops, 1);
  EXPECT_EQ(s1.forced_ops, 1);
}

TEST(SummarizeLog, EmptyIsEmpty) {
  EXPECT_TRUE(summarize_log({}).empty());
}

TEST(AlertsInLog, StrictThreshold) {
  const std::vector<SampleRecord> records{rec(0, 0, 1.0), rec(0, 1, 3.0),
                                          rec(1, 2, 3.0001)};
  const auto alerts = alerts_in_log(records, 3.0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].monitor, 1u);
  EXPECT_EQ(alerts[0].tick, 2);
}

TEST(IntervalHistogram, CountsAndClamps) {
  const std::vector<SampleRecord> records{
      rec(0, 0, 0), rec(0, 1, 0), rec(0, 3, 0), rec(0, 100, 0),
      rec(1, 5, 0), rec(1, 6, 0)};
  const auto hist = interval_histogram(records, 4);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 2);  // 0->1 and 5->6
  EXPECT_EQ(hist[2], 1);  // 1->3
  EXPECT_EQ(hist[4], 1);  // 3->100 clamped
  EXPECT_THROW(interval_histogram(records, 0), std::invalid_argument);
}

TEST(LogAnalysisIntegration, MonitorNodeLogReplaysItsRun) {
  const std::string path = ::testing::TempDir() + "volley_node_log.bin";
  std::remove(path.c_str());
  constexpr Tick kTicks = 300;

  net::CoordinatorNodeOptions copt;
  copt.monitors = 1;
  copt.global_threshold = 5.0;
  copt.error_allowance = 0.02;
  net::CoordinatorNode coordinator(copt);

  CallableSource source(
      [](Tick t) { return (t >= 200 && t < 240) ? 9.0 : 0.3; }, kTicks);
  net::MonitorNodeOptions mopt;
  mopt.id = 7;
  mopt.coordinator_port = coordinator.port();
  mopt.local_threshold = 5.0;
  mopt.ticks = kTicks;
  mopt.tick_micros = 200;
  mopt.sampler.max_interval = 8;
  mopt.sampler.patience = 3;
  mopt.sample_log_path = path;
  net::MonitorNode node(mopt, source);

  std::thread ct([&coordinator] { coordinator.run(); });
  std::thread mt([&node] { node.run(); });
  mt.join();
  ct.join();

  const auto log = read_sample_log(path);
  EXPECT_TRUE(log.clean);
  EXPECT_GT(log.records.size(), 0u);
  // Every record belongs to this monitor; scheduled count matches the
  // node's own accounting (poll answers served from cache also get logged,
  // so forced records are >= the node's forced ops need not hold — compare
  // scheduled only).
  std::int64_t scheduled = 0;
  for (const auto& record : log.records) {
    EXPECT_EQ(record.monitor, 7u);
    if (record.reason == SampleReason::kScheduled) ++scheduled;
  }
  EXPECT_EQ(scheduled, node.scheduled_ops());
  // The violation window left persisted evidence.
  const auto alerts = alerts_in_log(log.records, 5.0);
  EXPECT_GT(alerts.size(), 0u);
  for (const auto& alert : alerts) {
    EXPECT_GE(alert.tick, 200);
    EXPECT_LT(alert.tick, 240);
  }
  // Off-peak sampling stretched beyond the default interval.
  const auto summaries = summarize_log(log.records);
  EXPECT_GT(summaries.at(7).max_interval, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace volley
