// Unit tests for the multi-task state-correlation scheduler (Section II-B
// reconstruction): plan detection from correlated histories, leader/follower
// admission rules, gating and cooldown semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/correlation.h"

namespace volley {
namespace {

CorrelationScheduler::Options fast_options() {
  CorrelationScheduler::Options o;
  o.history_window = 256;
  o.max_lag = 8;
  o.min_correlation = 0.8;
  o.trigger_ratio = 0.7;
  o.plan_period = 64;
  o.cooldown = 16;
  o.min_history = 32;
  return o;
}

TEST(CorrelationScheduler, OptionsValidated) {
  auto o = fast_options();
  o.min_history = o.history_window + 1;
  EXPECT_THROW(CorrelationScheduler{o}, std::invalid_argument);
  o = fast_options();
  o.min_correlation = 0.0;
  EXPECT_THROW(CorrelationScheduler{o}, std::invalid_argument);
  o = fast_options();
  o.trigger_ratio = 0.0;
  EXPECT_THROW(CorrelationScheduler{o}, std::invalid_argument);
}

TEST(CorrelationScheduler, RejectsNonPositiveCost) {
  CorrelationScheduler sched(fast_options());
  EXPECT_THROW(sched.add_task(1.0, 0.0), std::invalid_argument);
}

TEST(CorrelationScheduler, NoPlanWithoutHistory) {
  CorrelationScheduler sched(fast_options());
  sched.add_task(10.0, 1.0);
  sched.add_task(10.0, 5.0);
  sched.rebuild_plan();
  EXPECT_TRUE(sched.plan().empty());
  EXPECT_FALSE(sched.suppressed(0));
  EXPECT_FALSE(sched.suppressed(1));
}

TEST(CorrelationScheduler, DetectsCorrelatedPairCheapLeadsExpensive) {
  CorrelationScheduler sched(fast_options());
  const auto cheap = sched.add_task(10.0, 1.0);
  const auto expensive = sched.add_task(10.0, 20.0);
  Rng rng(3);
  double x = 0.0;
  for (int t = 0; t < 200; ++t) {
    x = 2.0 + std::sin(t * 0.1) + rng.normal(0.0, 0.05);
    sched.observe(cheap, x);
    sched.observe(expensive, 2.0 * x);  // perfectly coupled
    sched.end_tick();
  }
  sched.rebuild_plan();
  ASSERT_EQ(sched.plan().size(), 1u);
  EXPECT_EQ(sched.plan()[0].leader, cheap);
  EXPECT_EQ(sched.plan()[0].follower, expensive);
  EXPECT_GT(sched.plan()[0].corr, 0.9);
}

TEST(CorrelationScheduler, NeverGatesTheCheaperTask) {
  CorrelationScheduler sched(fast_options());
  const auto expensive = sched.add_task(10.0, 20.0);
  const auto cheap = sched.add_task(10.0, 1.0);
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    const double x = std::sin(t * 0.05) + rng.normal(0.0, 0.02);
    sched.observe(expensive, x);
    sched.observe(cheap, x);
    sched.end_tick();
  }
  sched.rebuild_plan();
  for (const auto& edge : sched.plan()) {
    EXPECT_EQ(edge.follower, expensive);
    EXPECT_EQ(edge.leader, cheap);
  }
}

TEST(CorrelationScheduler, UncorrelatedTasksBuildNoPlan) {
  CorrelationScheduler sched(fast_options());
  sched.add_task(10.0, 1.0);
  sched.add_task(10.0, 20.0);
  Rng rng(7);
  for (int t = 0; t < 300; ++t) {
    sched.observe(0, rng.normal(0.0, 1.0));
    sched.observe(1, rng.normal(0.0, 1.0));
    sched.end_tick();
  }
  sched.rebuild_plan();
  EXPECT_TRUE(sched.plan().empty());
}

TEST(CorrelationScheduler, FollowerSuppressedWhileLeaderCold) {
  CorrelationScheduler sched(fast_options());
  const auto leader = sched.add_task(10.0, 1.0);
  const auto follower = sched.add_task(10.0, 20.0);
  Rng rng(9);
  for (int t = 0; t < 100; ++t) {
    const double x = 1.0 + std::sin(t * 0.2) * 0.5 + rng.normal(0.0, 0.02);
    sched.observe(leader, x);
    sched.observe(follower, x);
    sched.end_tick();
  }
  ASSERT_FALSE(sched.plan().empty());
  // Leader value ~1, trigger at 0.7*10 = 7: cold -> suppressed.
  EXPECT_TRUE(sched.suppressed(follower));
  EXPECT_FALSE(sched.suppressed(leader));
}

TEST(CorrelationScheduler, LeaderHeatWakesFollowerWithCooldown) {
  auto options = fast_options();
  options.cooldown = 10;
  CorrelationScheduler sched(options);
  const auto leader = sched.add_task(10.0, 1.0);
  const auto follower = sched.add_task(10.0, 20.0);
  Rng rng(11);
  for (int t = 0; t < 100; ++t) {
    const double x = 1.0 + std::sin(t * 0.2) * 0.5 + rng.normal(0.0, 0.02);
    sched.observe(leader, x);
    sched.observe(follower, x);
    sched.end_tick();
  }
  ASSERT_TRUE(sched.suppressed(follower));
  // Leader crosses the trigger (0.7 * 10 = 7).
  sched.observe(leader, 8.0);
  sched.observe(follower, 1.0);
  sched.end_tick();
  EXPECT_FALSE(sched.suppressed(follower));
  // Stays awake through the cooldown even if the leader cools.
  for (int t = 0; t < 9; ++t) {
    sched.observe(leader, 1.0);
    sched.observe(follower, 1.0);
    sched.end_tick();
    EXPECT_FALSE(sched.suppressed(follower)) << "tick " << t;
  }
  // Cooldown expired.
  sched.observe(leader, 1.0);
  sched.observe(follower, 1.0);
  sched.end_tick();
  EXPECT_TRUE(sched.suppressed(follower));
}

TEST(CorrelationScheduler, SelfHeatWakesFollower) {
  CorrelationScheduler sched(fast_options());
  const auto leader = sched.add_task(10.0, 1.0);
  const auto follower = sched.add_task(10.0, 20.0);
  Rng rng(13);
  for (int t = 0; t < 100; ++t) {
    const double x = 1.0 + std::sin(t * 0.2) * 0.5 + rng.normal(0.0, 0.02);
    sched.observe(leader, x);
    sched.observe(follower, x);
    sched.end_tick();
  }
  ASSERT_TRUE(sched.suppressed(follower));
  // The follower's own (rest-interval) sample runs hot: self-guard fires.
  sched.observe(leader, 1.0);
  sched.observe(follower, 9.0);
  sched.end_tick();
  EXPECT_FALSE(sched.suppressed(follower));
}

TEST(CorrelationScheduler, GateOfReportsEdge) {
  CorrelationScheduler sched(fast_options());
  const auto leader = sched.add_task(10.0, 1.0);
  const auto follower = sched.add_task(10.0, 20.0);
  Rng rng(15);
  for (int t = 0; t < 100; ++t) {
    const double x = std::sin(t * 0.1) + rng.normal(0.0, 0.01);
    sched.observe(leader, x);
    sched.observe(follower, x);
    sched.end_tick();
  }
  const auto gate = sched.gate_of(follower);
  ASSERT_TRUE(gate.has_value());
  EXPECT_EQ(gate->leader, leader);
  EXPECT_FALSE(sched.gate_of(leader).has_value());
}

TEST(CorrelationScheduler, NoTwoCyclesAndOneGatePerFollower) {
  // Three mutually correlated tasks with costs 1 < 5 < 25: the plan must be
  // acyclic, each follower gated once, and no gated task leading.
  CorrelationScheduler sched(fast_options());
  sched.add_task(10.0, 1.0);
  sched.add_task(10.0, 5.0);
  sched.add_task(10.0, 25.0);
  Rng rng(17);
  for (int t = 0; t < 200; ++t) {
    const double x = std::sin(t * 0.07) + rng.normal(0.0, 0.01);
    for (std::size_t i = 0; i < 3; ++i) sched.observe(i, x);
    sched.end_tick();
  }
  sched.rebuild_plan();
  std::vector<int> follows(3, 0), leads(3, 0);
  for (const auto& e : sched.plan()) {
    ++follows[e.follower];
    ++leads[e.leader];
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(follows[i], 1);
    EXPECT_FALSE(follows[i] > 0 && leads[i] > 0)
        << "task " << i << " both leads and follows";
  }
  EXPECT_FALSE(sched.plan().empty());
}

}  // namespace
}  // namespace volley
