// Unit tests for the violation-likelihood estimator (paper Section III-A):
// the Chebyshev per-step bound (Inequality 1), beta(I) (Inequality 3), the
// conservative edge handling, the delta statistics update rules (including
// the gap-normalized delta-hat and the 1000-sample restart), and the
// Gaussian ablation estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/likelihood.h"

namespace volley {
namespace {

TEST(ChebyshevStepBound, MatchesClosedForm) {
  // k = (T - v - i*mu) / (i*sigma) = (10 - 0 - 1*1)/(1*3) = 3.
  const DeltaStats stats{1.0, 3.0};
  const double expected = 1.0 / (1.0 + 9.0);
  EXPECT_NEAR(chebyshev_step_bound(0.0, 10.0, stats, 1), expected, 1e-12);
}

TEST(ChebyshevStepBound, GrowsWithHorizon) {
  const DeltaStats stats{0.5, 1.0};
  double prev = 0.0;
  for (Tick i = 1; i <= 10; ++i) {
    const double p = chebyshev_step_bound(0.0, 10.0, stats, i);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ChebyshevStepBound, GrowsAsValueApproachesThreshold) {
  const DeltaStats stats{0.0, 1.0};
  double prev = 0.0;
  for (double v = 0.0; v < 9.5; v += 1.0) {
    const double p = chebyshev_step_bound(v, 10.0, stats, 1);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(ChebyshevStepBound, NonPositiveKGivesOne) {
  // Mean drift alone crosses the threshold: no information, bound = 1.
  const DeltaStats stats{5.0, 1.0};
  EXPECT_DOUBLE_EQ(chebyshev_step_bound(8.0, 10.0, stats, 1), 1.0);
  EXPECT_DOUBLE_EQ(chebyshev_step_bound(5.0, 10.0, stats, 1), 1.0);
}

TEST(ChebyshevStepBound, ZeroSigmaIsDeterministic) {
  const DeltaStats stats{1.0, 0.0};
  EXPECT_DOUBLE_EQ(chebyshev_step_bound(0.0, 10.0, stats, 5), 0.0);
  EXPECT_DOUBLE_EQ(chebyshev_step_bound(0.0, 10.0, stats, 15), 1.0);
}

TEST(ChebyshevStepBound, RejectsNonPositiveHorizon) {
  const DeltaStats stats{0.0, 1.0};
  EXPECT_THROW(chebyshev_step_bound(0.0, 1.0, stats, 0),
               std::invalid_argument);
}

TEST(GaussianStepBound, TighterThanChebyshevInTheTail) {
  // For k >= ~2 the exact normal tail is far below 1/(1+k^2); this is why
  // the Chebyshev choice is the conservative one (paper Section III-B).
  const DeltaStats stats{0.0, 1.0};
  for (double v : {0.0, 2.0, 5.0}) {
    const double cheb = chebyshev_step_bound(v, 10.0, stats, 1);
    const double gauss = gaussian_step_bound(v, 10.0, stats, 1);
    EXPECT_LT(gauss, cheb);
  }
}

TEST(GaussianStepBound, HalfAtThreshold) {
  const DeltaStats stats{0.0, 1.0};
  EXPECT_NEAR(gaussian_step_bound(10.0, 10.0, stats, 1), 0.5, 1e-12);
}

TEST(BetaBound, OneStepEqualsStepBound) {
  const DeltaStats stats{0.2, 1.5};
  const double direct = chebyshev_step_bound(3.0, 10.0, stats, 1);
  const double beta =
      beta_bound_with(3.0, 10.0, stats, 1, chebyshev_step_bound);
  EXPECT_NEAR(beta, direct, 1e-12);
}

TEST(BetaBound, MonotoneInInterval) {
  const DeltaStats stats{0.1, 1.0};
  double prev = 0.0;
  for (Tick interval = 1; interval <= 20; ++interval) {
    const double beta =
        beta_bound_with(0.0, 20.0, stats, interval, chebyshev_step_bound);
    EXPECT_GE(beta, prev - 1e-15);
    prev = beta;
  }
}

TEST(BetaBound, MatchesProductForm) {
  const DeltaStats stats{0.0, 2.0};
  const Tick interval = 5;
  double survive = 1.0;
  for (Tick i = 1; i <= interval; ++i) {
    survive *= 1.0 - chebyshev_step_bound(1.0, 15.0, stats, i);
  }
  const double beta =
      beta_bound_with(1.0, 15.0, stats, interval, chebyshev_step_bound);
  EXPECT_NEAR(beta, 1.0 - survive, 1e-12);
}

TEST(Estimator, ColdStartIsConservative) {
  ViolationLikelihoodEstimator est;
  EXPECT_DOUBLE_EQ(est.beta_bound(10.0, 1), 1.0);
  est.observe(1.0, 1);  // first sample only seeds the previous value
  EXPECT_DOUBLE_EQ(est.beta_bound(10.0, 1), 1.0);
  est.observe(1.1, 1);  // first delta
  EXPECT_DOUBLE_EQ(est.beta_bound(10.0, 1), 1.0);  // < min_observations
  est.observe(1.2, 1);
  EXPECT_LT(est.beta_bound(10.0, 1), 1.0);  // statistics now available
}

TEST(Estimator, LearnsDeltaStatistics) {
  ViolationLikelihoodEstimator est;
  double v = 0.0;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    v += rng.normal(0.5, 0.1);
    est.observe(v, 1);
  }
  const auto stats = est.delta_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(stats->mean, 0.5, 0.05);
  EXPECT_NEAR(stats->stddev, 0.1, 0.05);
}

TEST(Estimator, GapNormalizesDelta) {
  // Values observed every 4 ticks with total change 4.0 per gap must yield
  // delta-hat = 1.0 per tick (paper III-B: delta-hat = (v(t)-v(t-I))/I).
  ViolationLikelihoodEstimator est;
  double v = 0.0;
  for (int i = 0; i < 20; ++i) {
    v += 4.0;
    est.observe(v, 4);
  }
  const auto stats = est.delta_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(stats->mean, 1.0, 1e-9);
  EXPECT_NEAR(stats->stddev, 0.0, 1e-9);
}

TEST(Estimator, FarFromThresholdMeansLowLikelihood) {
  ViolationLikelihoodEstimator est;
  Rng rng(7);
  double v = 0.0;
  for (int i = 0; i < 200; ++i) {
    v = rng.normal(0.0, 1.0);
    est.observe(v, 1);
  }
  EXPECT_LT(est.beta_bound(1000.0, 4), 0.01);
  EXPECT_LT(est.violation_likelihood(1000.0, 1), 0.01);
}

TEST(Estimator, NearThresholdMeansHighLikelihood) {
  ViolationLikelihoodEstimator est;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) est.observe(rng.normal(9.5, 1.0), 1);
  EXPECT_GT(est.beta_bound(10.0, 1), 0.2);
}

TEST(Estimator, RestartForgetsOldRegime) {
  ViolationLikelihoodEstimator::Options options;
  options.stats_window = 100;
  options.stats_warmup = 4;
  ViolationLikelihoodEstimator est(options);
  // Regime 1: huge volatility. Regime 2: tiny volatility near zero.
  Rng rng(11);
  for (int i = 0; i < 100; ++i) est.observe(rng.normal(0.0, 50.0), 1);
  for (int i = 0; i < 150; ++i) est.observe(rng.normal(0.0, 0.01), 1);
  const auto stats = est.delta_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_LT(stats->stddev, 1.0);  // old sigma=50 regime forgotten
}

TEST(Estimator, GaussianOptionGivesSmallerBeta) {
  ViolationLikelihoodEstimator::Options cheb_opt;
  ViolationLikelihoodEstimator::Options gauss_opt;
  gauss_opt.bound = ViolationLikelihoodEstimator::Bound::kGaussian;
  ViolationLikelihoodEstimator cheb(cheb_opt), gauss(gauss_opt);
  Rng rng(13);
  double v = 0.0;
  for (int i = 0; i < 100; ++i) {
    v = rng.normal(0.0, 1.0);
    cheb.observe(v, 1);
    gauss.observe(v, 1);
  }
  EXPECT_LT(gauss.beta_bound(8.0, 4), cheb.beta_bound(8.0, 4));
}

TEST(Estimator, RejectsBadArguments) {
  ViolationLikelihoodEstimator est;
  EXPECT_THROW(est.observe(1.0, 0), std::invalid_argument);
  EXPECT_THROW(est.beta_bound(1.0, 0), std::invalid_argument);
  EXPECT_THROW(est.violation_likelihood(1.0, 0), std::invalid_argument);
  ViolationLikelihoodEstimator::Options bad;
  bad.min_observations = 0;
  EXPECT_THROW(ViolationLikelihoodEstimator{bad}, std::invalid_argument);
}

TEST(Estimator, ResetReturnsToColdStart) {
  ViolationLikelihoodEstimator est;
  for (int i = 0; i < 10; ++i) est.observe(static_cast<double>(i), 1);
  est.reset();
  EXPECT_FALSE(est.has_statistics());
  EXPECT_DOUBLE_EQ(est.beta_bound(100.0, 1), 1.0);
}

// Empirical soundness: the Chebyshev beta bound must upper-bound the true
// mis-detection probability measured by Monte Carlo on iid normal deltas —
// for every horizon and for several value/threshold margins.
TEST(Estimator, BoundIsSoundOnSimulatedWalks) {
  const double mu = 0.1, sigma = 1.0, threshold = 12.0;
  const DeltaStats stats{mu, sigma};
  Rng mc(19);
  const int trials = 20000;

  for (double v0 : {2.0, 6.0, 9.0}) {
    for (Tick interval : {1, 2, 4, 8}) {
      const double bound =
          beta_bound_with(v0, threshold, stats, interval,
                          chebyshev_step_bound);
      int violations = 0;
      for (int trial = 0; trial < trials; ++trial) {
        double x = v0;
        for (Tick i = 0; i < interval; ++i) {
          x += mc.normal(mu, sigma);
          if (x > threshold) {
            ++violations;
            break;
          }
        }
      }
      const double true_rate = static_cast<double>(violations) / trials;
      EXPECT_GE(bound + 0.01, true_rate)
          << "v0=" << v0 << " interval=" << interval;
    }
  }
}

}  // namespace
}  // namespace volley
