// Tests for src/obs: the metrics registry (counters, gauges, histograms,
// Prometheus/JSON exposition, concurrency) and the structured trace sink
// (bounded ring, JSONL round-trip), plus the sim-driver integration that
// embeds a metrics snapshot in every RunResult.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"
#include "sim/runner.h"

namespace volley::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, CounterStartsAtZeroAndIncrements) {
  MetricsRegistry reg;
  auto& c = reg.counter("test_events_total", "help text");
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Metrics, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  auto& a = reg.counter("dup_total");
  auto& b = reg.counter("dup_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, TypeConflictThrows) {
  MetricsRegistry reg;
  reg.counter("shape_shifter");
  EXPECT_THROW(reg.gauge("shape_shifter"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("shape_shifter", 0, 1, 4), std::invalid_argument);
}

TEST(Metrics, BadNamesThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("1starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has-dash"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
  EXPECT_NO_THROW(reg.counter("_ok_name_2"));
}

TEST(Metrics, ConcurrentCounterIncrementsAreLossless) {
  MetricsRegistry reg;
  auto& c = reg.counter("contended_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&c] {
      for (int n = 0; n < kPerThread; ++n) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ConcurrentRegistrationReturnsOneInstrument) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back(
        [&reg] { reg.counter("race_total").inc(); });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.counter("race_total").value(), kThreads);
}

TEST(Metrics, GaugeHoldsLastWrite) {
  MetricsRegistry reg;
  auto& g = reg.gauge("level");
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Metrics, HistogramBucketsObservations) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency", 0.0, 10.0, 10);
  h.observe(0.5);   // bin 0
  h.observe(5.5);   // bin 5
  h.observe(5.9);   // bin 5
  h.observe(-1.0);  // underflow, clamped to bin 0
  h.observe(42.0);  // overflow, clamped to last bin
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 5);
  EXPECT_EQ(snap.bin_count(0), 2);
  EXPECT_EQ(snap.bin_count(5), 2);
  EXPECT_EQ(snap.underflow(), 1);
  EXPECT_EQ(snap.overflow(), 1);
}

TEST(Metrics, HistogramReRegistrationKeepsFirstBounds) {
  MetricsRegistry reg;
  auto& a = reg.histogram("fixed", 0.0, 10.0, 10);
  auto& b = reg.histogram("fixed", -5.0, 5.0, 2);  // ignored bounds
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.snapshot().bins(), 10u);
}

TEST(Metrics, ResetZeroesInPlaceAndKeepsHandles) {
  MetricsRegistry reg;
  auto& c = reg.counter("r_total");
  auto& g = reg.gauge("r_gauge");
  auto& h = reg.histogram("r_hist", 0, 1, 4);
  c.inc(7);
  g.set(2.0);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count(), 0);
  c.inc();  // the old handle still points at the live instrument
  EXPECT_EQ(reg.counter("r_total").value(), 1);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("volley_ops_total", "Sampling operations").inc(3);
  reg.gauge("volley_share", "Current share").set(0.25);
  auto& h = reg.histogram("volley_interval", 0.0, 4.0, 2, "Intervals");
  h.observe(1.0);
  h.observe(3.0);
  h.observe(9.0);  // overflow
  const std::string text = reg.to_prometheus();

  EXPECT_NE(text.find("# HELP volley_ops_total Sampling operations"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE volley_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("volley_ops_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE volley_share gauge"), std::string::npos);
  EXPECT_NE(text.find("volley_share 0.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE volley_interval histogram"), std::string::npos);
  // Buckets are cumulative; +Inf carries the total including overflow.
  EXPECT_NE(text.find("volley_interval_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("volley_interval_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("volley_interval_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("volley_interval_count 3"), std::string::npos);
}

TEST(Metrics, JsonSnapshotShape) {
  MetricsRegistry reg;
  reg.counter("c_total").inc(2);
  reg.gauge("g").set(1.5);
  reg.histogram("h", 0.0, 1.0, 2).observe(0.25);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[1,0]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(Metrics, GlobalRegistryIsASingleton) {
  auto& a = metrics();
  auto& b = metrics();
  EXPECT_EQ(&a, &b);
}

// ---------------------------------------------------------------------------
// TraceSink

TEST(Trace, KindNamesRoundTrip) {
  for (int k = 0; k <= 8; ++k) {
    const auto kind = static_cast<TraceKind>(k);
    const auto parsed = trace_kind_from_name(trace_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(trace_kind_from_name("nonsense").has_value());
}

TEST(Trace, RecordsWithMonotoneSequence) {
  TraceSink sink(8);
  sink.record(TraceKind::kSampleTaken, 1, 0, 10.0);
  sink.record(TraceKind::kIntervalChosen, 2, 1, 4.0, 0.01);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0);
  EXPECT_EQ(events[1].seq, 1);
  EXPECT_EQ(events[1].kind, TraceKind::kIntervalChosen);
  EXPECT_EQ(events[1].monitor, 1u);
  EXPECT_DOUBLE_EQ(events[1].detail, 0.01);
  EXPECT_EQ(sink.recorded(), 2);
  EXPECT_EQ(sink.dropped(), 0);
}

TEST(Trace, RingOverwritesOldestWhenFull) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.record(TraceKind::kSampleTaken, i, 0, static_cast<double>(i));
  }
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Newest 4 survive, oldest first.
  EXPECT_EQ(events.front().tick, 6);
  EXPECT_EQ(events.back().tick, 9);
  EXPECT_EQ(sink.recorded(), 10);
  EXPECT_EQ(sink.dropped(), 6);
}

TEST(Trace, JsonRoundTrip) {
  TraceEvent e;
  e.kind = TraceKind::kAlertRaised;
  e.seq = 17;
  e.tick = 420;
  e.monitor = 3;
  e.value = 12.5;
  e.detail = 9.0;
  const auto parsed = trace_event_from_json(to_json(e));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, e.kind);
  EXPECT_EQ(parsed->seq, e.seq);
  EXPECT_EQ(parsed->tick, e.tick);
  EXPECT_EQ(parsed->monitor, e.monitor);
  EXPECT_DOUBLE_EQ(parsed->value, e.value);
  EXPECT_DOUBLE_EQ(parsed->detail, e.detail);
}

TEST(Trace, JsonRejectsMalformedLines) {
  EXPECT_FALSE(trace_event_from_json("").has_value());
  EXPECT_FALSE(trace_event_from_json("{}").has_value());
  EXPECT_FALSE(trace_event_from_json("not json").has_value());
  EXPECT_FALSE(trace_event_from_json(
                   R"({"seq":0,"kind":"bogus_kind","tick":0,"monitor":0,)"
                   R"("value":0,"detail":0})")
                   .has_value());
}

TEST(Trace, JsonlExportRoundTripsEveryLine) {
  TraceSink sink(16);
  sink.record(TraceKind::kSampleTaken, 1, 2, 3.5, 0.0);
  sink.record(TraceKind::kAllowanceAdjusted, 5, 1, 0.02, 0.01);
  sink.record(TraceKind::kMisdetectWindow, 100, 0, 104.0, 4.0);
  const std::string jsonl = sink.to_jsonl();
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const std::size_t eol = jsonl.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);  // every line newline-terminated
    const auto parsed =
        trace_event_from_json(jsonl.substr(pos, eol - pos));
    ASSERT_TRUE(parsed.has_value()) << jsonl.substr(pos, eol - pos);
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(Trace, JsonlExportBoundsToNewestEvents) {
  TraceSink sink(16);
  for (int i = 0; i < 10; ++i) {
    sink.record(TraceKind::kSampleTaken, i, 0, 0.0);
  }
  const std::string jsonl = sink.to_jsonl(2);
  const auto first_line = jsonl.substr(0, jsonl.find('\n'));
  const auto parsed = trace_event_from_json(first_line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tick, 8);  // newest 2, oldest first
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(Trace, ClearResetsRetainedEventsButNotSequence) {
  TraceSink sink(4);
  sink.record(TraceKind::kSampleTaken, 0, 0, 0.0);
  sink.clear();
  EXPECT_TRUE(sink.snapshot().empty());
  sink.record(TraceKind::kSampleTaken, 1, 0, 0.0);
  // seq keeps rising across clear(): exporters can still order events.
  EXPECT_EQ(sink.snapshot().front().seq, 1);
}

TEST(Trace, ConcurrentRecordsKeepAllSequenceNumbersUnique) {
  TraceSink sink(100000);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&sink, i] {
      for (int n = 0; n < kPerThread; ++n) {
        sink.record(TraceKind::kSampleTaken, n, static_cast<std::uint32_t>(i),
                    0.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<std::int64_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Scoped registries and registry merging (the parallel-sweep contract).

TEST(ScopedMetrics, RebindsCurrentRegistryAndRestoresOnExit) {
  MetricsRegistry inner;
  MetricsRegistry& before = metrics();
  {
    ScopedMetricsRegistry scope(inner);
    EXPECT_EQ(&metrics(), &inner);
    metrics().counter("scoped_events_total").inc();
  }
  EXPECT_EQ(&metrics(), &before);
  EXPECT_EQ(inner.counter("scoped_events_total").value(), 1);
}

TEST(ScopedMetrics, ScopesNest) {
  MetricsRegistry outer, inner;
  ScopedMetricsRegistry outer_scope(outer);
  {
    ScopedMetricsRegistry inner_scope(inner);
    EXPECT_EQ(&metrics(), &inner);
  }
  EXPECT_EQ(&metrics(), &outer);
}

TEST(ScopedMetrics, BindingIsThreadLocal) {
  MetricsRegistry mine;
  ScopedMetricsRegistry scope(mine);
  MetricsRegistry* seen_on_other_thread = nullptr;
  std::thread other([&] { seen_on_other_thread = &metrics(); });
  other.join();
  EXPECT_EQ(seen_on_other_thread, &global_metrics());
  EXPECT_EQ(&metrics(), &mine);
}

TEST(ScopedMetrics, HandleCacheFollowsScopeAcrossReusedAddresses) {
  // Regression: scoped_handles used to key its thread-local cache on the
  // registry *address*. Successive run scopes put their registries at the
  // same stack address, so the second scope inherited handles into the
  // first (destroyed) registry. The uid key must re-resolve every time.
  struct Handles {
    Counter* events{nullptr};
    static Handles make(MetricsRegistry& m) {
      return Handles{&m.counter("cache_follow_events_total")};
    }
  };
  for (int round = 0; round < 3; ++round) {
    MetricsRegistry run_registry;
    ScopedMetricsRegistry scope(run_registry);
    scoped_handles<Handles>(&Handles::make).events->inc();
    EXPECT_EQ(run_registry.counter("cache_follow_events_total").value(), 1)
        << "round " << round;
  }
}

TEST(MetricsMerge, CountersAdd) {
  MetricsRegistry a, b;
  a.counter("events_total").inc(5);
  b.counter("events_total").inc(7);
  b.counter("only_b_total").inc(2);
  a.merge_from(b);
  EXPECT_EQ(a.counter("events_total").value(), 12);
  EXPECT_EQ(a.counter("only_b_total").value(), 2);
  // The source is unchanged.
  EXPECT_EQ(b.counter("events_total").value(), 7);
}

TEST(MetricsMerge, GaugesAdoptSourceValue) {
  MetricsRegistry a, b;
  a.gauge("level").set(1.0);
  b.gauge("level").set(4.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.gauge("level").value(), 4.0);
}

TEST(MetricsMerge, HistogramsCombineBinWise) {
  MetricsRegistry a, b;
  auto& ha = a.histogram("latency", 0.0, 10.0, 10);
  auto& hb = b.histogram("latency", 0.0, 10.0, 10);
  ha.observe(1.5);
  ha.observe(25.0);  // overflow
  hb.observe(1.5);
  hb.observe(-3.0);  // underflow
  a.merge_from(b);
  const Histogram h = ha.snapshot();
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bin_count(1), 2);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.underflow(), 1);
}

TEST(MetricsMerge, MismatchedHistogramShapesThrow) {
  MetricsRegistry a, b;
  a.histogram("latency", 0.0, 10.0, 10);
  b.histogram("latency", 0.0, 20.0, 10).observe(1.0);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(MetricsMerge, TypeConflictThrows) {
  MetricsRegistry a, b;
  a.counter("thing");
  b.gauge("thing").set(1.0);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(MetricsMerge, SelfMergeIsNoop) {
  MetricsRegistry a;
  a.counter("events_total").inc(3);
  a.merge_from(a);
  EXPECT_EQ(a.counter("events_total").value(), 3);
}

TEST(MetricsMerge, ShardsMatchSingleRegistry) {
  // Property: recording a stream into K shard registries and merging them
  // is equivalent to recording the whole stream into one registry —
  // the same law OnlineStats::merge obeys, at the registry level.
  Rng rng(17);
  constexpr int kShards = 4;
  MetricsRegistry whole;
  MetricsRegistry shards[kShards];
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(-1.0, 11.0);
    MetricsRegistry& shard = shards[i % kShards];
    whole.counter("events_total").inc();
    shard.counter("events_total").inc();
    whole.histogram("values", 0.0, 10.0, 20).observe(x);
    shard.histogram("values", 0.0, 10.0, 20).observe(x);
  }
  MetricsRegistry merged;
  for (const auto& shard : shards) merged.merge_from(shard);
  EXPECT_EQ(merged.counter("events_total").value(),
            whole.counter("events_total").value());
  const Histogram hm = merged.histogram("values", 0.0, 10.0, 20).snapshot();
  const Histogram hw = whole.histogram("values", 0.0, 10.0, 20).snapshot();
  EXPECT_EQ(hm.count(), hw.count());
  EXPECT_EQ(hm.underflow(), hw.underflow());
  EXPECT_EQ(hm.overflow(), hw.overflow());
  for (std::size_t b = 0; b < hw.bins(); ++b) {
    EXPECT_EQ(hm.bin_count(b), hw.bin_count(b)) << "bin " << b;
  }
  // Merging adds the shards' partial sums, so the mean can differ from the
  // sequential stream's in the last ulp — equal within 1e-12, not bitwise.
  EXPECT_NEAR(hm.mean(), hw.mean(), 1e-12);
}

TEST(ScopedTrace, RebindsSinkAndRestores) {
  TraceSink mine(16);
  TraceSink& before = trace();
  {
    ScopedTraceSink scope(mine);
    EXPECT_EQ(&trace(), &mine);
    trace().record(TraceKind::kSampleTaken, 1, 0, 0.5);
  }
  EXPECT_EQ(&trace(), &before);
  EXPECT_EQ(mine.snapshot().size(), 1u);
}

// ---------------------------------------------------------------------------
// Sim integration: every RunResult carries a metrics snapshot.

TEST(ObsIntegration, SimRunEmbedsNonZeroMetricsSnapshot) {
  Rng rng(7);
  TimeSeries series(2000);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = rng.normal(0.0, 0.1);
  }
  series[500] = 10.0;  // one violation episode so polls/alerts fire

  TaskSpec spec;
  spec.global_threshold = 5.0;
  spec.error_allowance = 0.02;
  spec.max_interval = 16;
  spec.patience = 5;
  spec.updating_period = 400;

  const auto result = run_volley_single(spec, series);
  ASSERT_FALSE(result.metrics_json.empty());
  EXPECT_NE(result.metrics_json.find("\"counters\""), std::string::npos);
  EXPECT_NE(result.metrics_json.find("volley_sampler_observations_total"),
            std::string::npos);
  // The process-global counters are cumulative, so after a 2000-tick run the
  // sampler observation count is necessarily non-zero.
  EXPECT_EQ(result.metrics_json.find("\"volley_sampler_observations_total\":0,"),
            std::string::npos);
  EXPECT_GT(metrics()
                .counter("volley_sampler_observations_total")
                .value(),
            0);
  EXPECT_GT(metrics().counter("volley_monitor_scheduled_ops_total").value(),
            0);
  // The spike produced at least one interval-chosen trace event.
  bool saw_interval_event = false;
  for (const auto& event : trace().snapshot()) {
    if (event.kind == TraceKind::kIntervalChosen) {
      saw_interval_event = true;
      break;
    }
  }
  EXPECT_TRUE(saw_interval_event);
}

}  // namespace
}  // namespace volley::obs
