// Unit tests for src/common: rng (incl. Zipf), ring buffer, config, clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/clock.h"
#include "common/config.h"
#include "common/ring_buffer.h"
#include "common/rng.h"

namespace volley {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::map<std::int64_t, int> seen;
  for (int i = 0; i < 5000; ++i) ++seen[rng.uniform_int(1, 6)];
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.begin()->first, 1);
  EXPECT_EQ(seen.rbegin()->first, 6);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(7.5));
  EXPECT_NEAR(sum / n, 7.5, 0.1);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // The child stream should not replay the parent's.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == child.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(5, -0.1), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.2);
  double sum = 0;
  for (std::size_t r = 1; r <= 100; ++r) sum += zipf.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, ZeroSkewIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (std::size_t r = 1; r <= 10; ++r) EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-12);
}

TEST(Zipf, MassDecreasesWithRank) {
  ZipfDistribution zipf(50, 1.0);
  for (std::size_t r = 2; r <= 50; ++r) {
    EXPECT_LT(zipf.pmf(r), zipf.pmf(r - 1));
  }
}

TEST(Zipf, SampleFrequenciesTrackPmf) {
  ZipfDistribution zipf(20, 1.0);
  Rng rng(5);
  std::vector<int> counts(21, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 1; r <= 20; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.pmf(r), 0.01);
  }
}

TEST(Zipf, PmfRejectsOutOfRange) {
  ZipfDistribution zipf(5, 1.0);
  EXPECT_THROW(zipf.pmf(0), std::out_of_range);
  EXPECT_THROW(zipf.pmf(6), std::out_of_range);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, FillsThenOverwritesOldest) {
  RingBuffer<int> buf(3);
  EXPECT_TRUE(buf.empty());
  buf.push(1);
  buf.push(2);
  buf.push(3);
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.front(), 1);
  buf.push(4);
  EXPECT_EQ(buf.front(), 2);
  EXPECT_EQ(buf.back(), 4);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(RingBuffer, IndexIsOldestFirst) {
  RingBuffer<int> buf(4);
  for (int i = 0; i < 10; ++i) buf.push(i);
  EXPECT_EQ(buf[0], 6);
  EXPECT_EQ(buf[1], 7);
  EXPECT_EQ(buf[2], 8);
  EXPECT_EQ(buf[3], 9);
}

TEST(RingBuffer, ToVectorPreservesOrder) {
  RingBuffer<int> buf(3);
  for (int i = 0; i < 5; ++i) buf.push(i);
  const std::vector<int> expected{2, 3, 4};
  EXPECT_EQ(buf.to_vector(), expected);
}

TEST(RingBuffer, ClearEmpties) {
  RingBuffer<int> buf(3);
  buf.push(1);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  buf.push(9);
  EXPECT_EQ(buf.front(), 9);
}

TEST(Config, ParsesArgsAndTypes) {
  const auto cfg = Config::from_args({"port=8080", "rate=2.5", "on=true"});
  EXPECT_EQ(cfg.get_int("port", 0), 8080);
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(cfg.get_bool("on", false));
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
}

TEST(Config, LaterDuplicatesWin) {
  const auto cfg = Config::from_args({"a=1", "a=2"});
  EXPECT_EQ(cfg.get_int("a", 0), 2);
}

TEST(Config, RejectsMalformedToken) {
  EXPECT_THROW(Config::from_args({"noequals"}), std::invalid_argument);
}

TEST(Config, RejectsBadTypedValues) {
  const auto cfg = Config::from_args({"x=abc", "b=maybe"});
  EXPECT_THROW(cfg.get_int("x", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("b", false), std::invalid_argument);
}

TEST(Config, ParsesTextWithCommentsAndBlanks) {
  const auto cfg = Config::from_text("a=1\n# comment\n\n  b=two  \r\nc=3");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "two");
  EXPECT_EQ(cfg.get_int("c", 0), 3);
  EXPECT_FALSE(cfg.has("# comment"));
}

TEST(TickScale, ConvertsBothWays) {
  const TickScale scale{15.0};
  EXPECT_DOUBLE_EQ(scale.to_seconds(4), 60.0);
  EXPECT_EQ(scale.to_ticks(61.0), 4);
}

}  // namespace
}  // namespace volley
