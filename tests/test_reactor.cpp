// Unit tests for the reactor (both readiness backends) and its
// calendar-ring timer wheel (net/reactor.h): fd registration and dispatch,
// EPOLLOUT re-arm, timer ordering / cancellation / beyond-one-lap
// deadlines, cross-thread wakeup, the VOLLEY_POLL_LOOP / VOLLEY_URING
// resolution helpers, the forced-io_uring backend, and the ReactorPool's
// MPSC task queues (no lost wakeups, FIFO per producer — the TSan job
// hammers these).
#include "net/reactor.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/reactor_pool.h"
#include "obs/metrics.h"

namespace volley::net {
namespace {

struct Pipe {
  int fds[2]{-1, -1};
  Pipe() {
    EXPECT_EQ(::pipe(fds), 0);
    // Nonblocking read end so drain() terminates with EAGAIN when empty.
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_end() const { return fds[0]; }
  void write_byte() const {
    const char c = 'x';
    ASSERT_EQ(::write(fds[1], &c, 1), 1);
  }
  void drain() const {
    char c = 0;
    while (::read(fds[0], &c, 1) == 1) {
    }
  }
};

TEST(ReactorTest, DispatchesReadableFd) {
  Reactor r;
  Pipe p;
  int hits = 0;
  r.add_fd(p.read_end(), [&](std::uint32_t events) {
    EXPECT_TRUE(Reactor::readable(events));
    ++hits;
    char c = 0;
    ASSERT_EQ(::read(p.read_end(), &c, 1), 1);
  });
  EXPECT_EQ(r.run_once(0), 0);  // nothing pending yet
  p.write_byte();
  EXPECT_EQ(r.run_once(100), 1);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(r.run_once(0), 0);  // level-triggered, drained: quiet again
  EXPECT_EQ(r.watched_fds(), 1U);
  r.remove_fd(p.read_end());
  EXPECT_EQ(r.watched_fds(), 0U);
  p.write_byte();
  EXPECT_EQ(r.run_once(0), 0);  // deregistered fds never dispatch
  EXPECT_EQ(hits, 1);
}

TEST(ReactorTest, RemoveFdIsIdempotentAndSafeForUnknown) {
  Reactor r;
  r.remove_fd(12345);  // never added: no-op
  Pipe p;
  r.add_fd(p.read_end(), [](std::uint32_t) {});
  r.remove_fd(p.read_end());
  r.remove_fd(p.read_end());
  EXPECT_EQ(r.watched_fds(), 0U);
}

TEST(ReactorTest, UpdateHandlerSwapsDispatchTarget) {
  Reactor r;
  Pipe p;
  int first = 0;
  int second = 0;
  r.add_fd(p.read_end(), [&](std::uint32_t) {
    ++first;
    p.drain();
  });
  p.write_byte();
  r.run_once(100);
  r.update_handler(p.read_end(), [&](std::uint32_t) {
    ++second;
    p.drain();
  });
  p.write_byte();
  r.run_once(100);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(ReactorTest, WantWriteArmsEpollout) {
  Reactor r;
  Pipe p;
  // A pipe write end is writable immediately; EPOLLOUT only fires once
  // armed.
  bool writable = false;
  r.add_fd(p.fds[1], [&](std::uint32_t events) {
    if (Reactor::writable(events)) writable = true;
  });
  EXPECT_EQ(r.run_once(0), 0);  // EPOLLOUT not armed: quiet
  r.set_want_write(p.fds[1], true);
  EXPECT_GE(r.run_once(100), 1);
  EXPECT_TRUE(writable);
  writable = false;
  r.set_want_write(p.fds[1], false);
  EXPECT_EQ(r.run_once(0), 0);
  EXPECT_FALSE(writable);
}

TEST(ReactorTimerTest, FiresInDeadlineOrder) {
  Reactor r;
  std::vector<int> order;
  r.add_timer(30, [&] { order.push_back(3); });
  r.add_timer(10, [&] { order.push_back(1); });
  r.add_timer(20, [&] { order.push_back(2); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(500);
  while (order.size() < 3 && std::chrono::steady_clock::now() < deadline) {
    r.run_once(50);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(r.pending_timers(), 0U);
  EXPECT_FALSE(r.next_deadline_ms().has_value());
}

TEST(ReactorTimerTest, CancelPreventsFiring) {
  Reactor r;
  bool fired = false;
  bool kept = false;
  const auto id = r.add_timer(10, [&] { fired = true; });
  r.add_timer(20, [&] { kept = true; });
  r.cancel_timer(id);
  EXPECT_EQ(r.pending_timers(), 1U);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(500);
  while (!kept && std::chrono::steady_clock::now() < deadline) {
    r.run_once(50);
  }
  EXPECT_FALSE(fired);
  EXPECT_TRUE(kept);
  r.cancel_timer(id);      // already fired/cancelled: no-op
  r.cancel_timer(999999);  // unknown: no-op
}

TEST(ReactorTimerTest, ZeroDelayFiresOnNextTurn) {
  Reactor r;
  bool fired = false;
  r.add_timer(0, [&] { fired = true; });
  ASSERT_TRUE(r.next_deadline_ms().has_value());
  r.run_once(100);
  EXPECT_TRUE(fired);
}

TEST(ReactorTimerTest, CallbackMayArmAnotherTimer) {
  Reactor r;
  int chain = 0;
  std::function<void()> again = [&] {
    if (++chain < 3) r.add_timer(5, again);
  };
  r.add_timer(5, again);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(1000);
  while (chain < 3 && std::chrono::steady_clock::now() < deadline) {
    r.run_once(50);
  }
  EXPECT_EQ(chain, 3);
}

TEST(ReactorTimerTest, BeyondOneLapDeadlineSurvives) {
  // The wheel spans 512 ms at 1 ms resolution; a 700 ms deadline wraps the
  // ring and must not fire on the first pass over its slot.
  Reactor r;
  bool far_fired = false;
  bool near_fired = false;
  r.add_timer(700, [&] { far_fired = true; });
  r.add_timer(20, [&] { near_fired = true; });
  const auto start = std::chrono::steady_clock::now();
  while (!near_fired &&
         std::chrono::steady_clock::now() - start <
             std::chrono::milliseconds(400)) {
    r.run_once(50);
  }
  EXPECT_TRUE(near_fired);
  EXPECT_FALSE(far_fired);  // 700 ms not yet elapsed
  EXPECT_EQ(r.pending_timers(), 1U);
  // The far deadline is still tracked and correctly bounded.
  const auto due = r.next_deadline_ms();
  ASSERT_TRUE(due.has_value());
  while (!far_fired &&
         std::chrono::steady_clock::now() - start <
             std::chrono::milliseconds(2000)) {
    r.run_once(100);
  }
  EXPECT_TRUE(far_fired);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 700);  // never early
}

TEST(ReactorTimerTest, TimerNeverFiresEarly) {
  Reactor r;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point fired_at;
  bool fired = false;
  r.add_timer(50, [&] {
    fired = true;
    fired_at = std::chrono::steady_clock::now();
  });
  while (!fired && std::chrono::steady_clock::now() - start <
                       std::chrono::milliseconds(1000)) {
    r.run_once(10);
  }
  ASSERT_TRUE(fired);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(fired_at -
                                                                  start)
                .count(),
            50);
}

TEST(ReactorTest, WakeupUnblocksFromAnotherThread) {
  Reactor r;
  std::thread poker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    r.wakeup();
  });
  const auto start = std::chrono::steady_clock::now();
  // No fds, no timers: without wakeup() this would sleep the full bound.
  r.run_once(5000);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  poker.join();
  EXPECT_LT(waited, 4000);
}

TEST(ReactorTest, RunOnceForSupportsSubMillisecondWaits) {
  Reactor r;
  const auto start = std::chrono::steady_clock::now();
  r.run_once_for(std::chrono::microseconds(300));
  const auto waited_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Just bounded sanity: returned well under a full millisecond-loop tick.
  EXPECT_LT(waited_us, 100000);
}

TEST(ReactorTest, StatsCountWakeupsEventsAndTimers) {
  Reactor r;
  Pipe p;
  r.add_fd(p.read_end(), [&](std::uint32_t) { p.drain(); });
  bool fired = false;
  r.add_timer(1, [&] { fired = true; });
  p.write_byte();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(500);
  while (!fired && std::chrono::steady_clock::now() < deadline) {
    r.run_once(20);
  }
  EXPECT_GE(r.stats().wakeups, 1);
  EXPECT_GE(r.stats().io_events, 1);
  EXPECT_GE(r.stats().timers_fired, 1);
}

TEST(PollLoopEnvTest, ResolvePollLoopHonorsOverride) {
  EXPECT_FALSE(resolve_poll_loop(0));  // forced reactor
  EXPECT_TRUE(resolve_poll_loop(1));   // forced legacy
  // -1 follows the environment; both outcomes are legal here, it must just
  // agree with poll_loop_from_env().
  EXPECT_EQ(resolve_poll_loop(-1), poll_loop_from_env());
}

// --- io_uring backend (DESIGN.md §14) --------------------------------------

TEST(UringBackendTest, ResolveBackendHonorsOverride) {
  EXPECT_EQ(resolve_backend(0), ReactorBackend::kEpoll);
  if (uring_supported()) {
    EXPECT_EQ(resolve_backend(1), ReactorBackend::kUring);
  } else {
    EXPECT_EQ(resolve_backend(1), ReactorBackend::kEpoll);  // silent fallback
  }
}

TEST(UringBackendTest, ForcedUringDispatchesIoAndTimers) {
  if (!uring_supported()) GTEST_SKIP() << "kernel lacks io_uring";
  Reactor r(ReactorBackend::kUring);
  ASSERT_EQ(r.backend(), ReactorBackend::kUring);
  Pipe p;
  int hits = 0;
  r.add_fd(p.read_end(), [&](std::uint32_t events) {
    EXPECT_TRUE(Reactor::readable(events));
    p.drain();
    ++hits;
  });
  p.write_byte();
  EXPECT_GE(r.run_once(100), 1);
  EXPECT_EQ(hits, 1);
  // Level-triggered identity: an un-drained fd fires again on re-arm.
  bool undrained_hit = false;
  r.add_fd(p.read_end(), [&](std::uint32_t) { undrained_hit = true; });
  p.write_byte();
  r.run_once(100);
  EXPECT_TRUE(undrained_hit);
  undrained_hit = false;
  r.run_once(100);  // still readable: must fire again without new bytes
  EXPECT_TRUE(undrained_hit);
  r.remove_fd(p.read_end());
  bool fired = false;
  r.add_timer(5, [&] { fired = true; });
  const auto t0 = std::chrono::steady_clock::now();
  while (!fired &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(2)) {
    r.run_once(50);
  }
  EXPECT_TRUE(fired);
  EXPECT_GE(r.stats().syscalls, 1);
}

TEST(UringBackendTest, WantWriteFlipsAcrossRegenerations) {
  if (!uring_supported()) GTEST_SKIP() << "kernel lacks io_uring";
  Reactor r(ReactorBackend::kUring);
  Pipe p;
  int writable_hits = 0;
  // The pipe's write end is writable immediately; flipping interest on and
  // off exercises the POLL_REMOVE + re-arm generation guard.
  r.add_fd(p.fds[1], [&](std::uint32_t events) {
    if (Reactor::writable(events)) ++writable_hits;
  });
  r.run_once(50);
  EXPECT_EQ(writable_hits, 0);  // read-only interest so far
  r.set_want_write(p.fds[1], true);
  r.run_once(100);
  EXPECT_GE(writable_hits, 1);
  r.set_want_write(p.fds[1], false);
  const int before = writable_hits;
  r.run_once(50);
  EXPECT_EQ(writable_hits, before);  // stale completions dropped by gen
  r.remove_fd(p.fds[1]);
}

TEST(UringBackendTest, CrossThreadWakeupUnblocks) {
  if (!uring_supported()) GTEST_SKIP() << "kernel lacks io_uring";
  Reactor r(ReactorBackend::kUring);
  std::thread kicker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    r.wakeup();
  });
  const auto t0 = std::chrono::steady_clock::now();
  r.run_once(5000);
  const auto waited = std::chrono::steady_clock::now() - t0;
  kicker.join();
  EXPECT_LT(waited, std::chrono::seconds(4));
}

// --- ReactorPool (DESIGN.md §14) -------------------------------------------

TEST(ReactorPoolTest, ResolveNetThreadsHonorsOverride) {
  EXPECT_EQ(resolve_net_threads(0), 1u);  // clamped to >= 1
  EXPECT_EQ(resolve_net_threads(1), 1u);
  EXPECT_EQ(resolve_net_threads(4), 4u);
  EXPECT_EQ(resolve_net_threads(-1), net_threads_from_env());
}

TEST(ReactorPoolTest, SizeOneHasNoWorkersAndHomesEverything) {
  ReactorPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  pool.start();  // no-op
  EXPECT_FALSE(pool.running());
  EXPECT_EQ(pool.next_loop(), 0u);
  int ran = 0;
  pool.post(0, [&] { ++ran; });
  EXPECT_EQ(pool.drain_tasks(0), 1u);  // the owner drains home tasks
  EXPECT_EQ(ran, 1);
}

TEST(ReactorPoolTest, RoundRobinSkipsHomeLoop) {
  ReactorPool pool(4);
  // Sessions land on workers 1..3 only; the home loop keeps the listener
  // and the protocol state machine.
  std::vector<std::size_t> seen;
  for (int i = 0; i < 7; ++i) seen.push_back(pool.next_loop());
  for (const std::size_t loop : seen) {
    EXPECT_GE(loop, 1u);
    EXPECT_LE(loop, 3u);
  }
  EXPECT_EQ(seen[0], 1u);
  EXPECT_EQ(seen[1], 2u);
  EXPECT_EQ(seen[2], 3u);
  EXPECT_EQ(seen[3], 1u);  // wraps back to the first worker
}

TEST(ReactorPoolTest, PostedTaskRunsOnTargetLoopThread) {
  ReactorPool pool(2);
  pool.start();
  ASSERT_TRUE(pool.running());
  std::atomic<bool> ran{false};
  std::thread::id worker_id{};
  pool.post(1, [&] {
    worker_id = std::this_thread::get_id();
    ran.store(true, std::memory_order_release);
  });
  const auto t0 = std::chrono::steady_clock::now();
  while (!ran.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(ran.load());
  EXPECT_NE(worker_id, std::this_thread::get_id());
  pool.stop();
}

TEST(ReactorPoolTest, StopRunsTasksPostedAfterLastTurn) {
  // The final drain after the stop flag: a task posted while the worker is
  // shutting down must still run, never be dropped.
  for (int round = 0; round < 20; ++round) {
    ReactorPool pool(2);
    pool.start();
    std::atomic<int> ran{0};
    pool.post(1, [&] { ran.fetch_add(1); });
    pool.stop();
    EXPECT_EQ(ran.load(), 1) << "round " << round;
  }
}

// The TSan job hammers this: several producers post into one worker's MPSC
// queue while the worker sleeps and wakes. Pins (a) no lost wakeups —
// every task runs, stop() never strands one; (b) FIFO per producer — each
// producer's tasks run in the order it posted them.
TEST(ReactorPoolTest, MpscContentionKeepsFifoPerProducerAndLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  ReactorPool pool(2);
  pool.start();
  std::mutex seen_mu;
  std::vector<std::vector<int>> seen(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.post(1, [&, p, i] {
          // Runs on the worker thread, serialized by the loop itself.
          std::lock_guard<std::mutex> lock(seen_mu);
          seen[p].push_back(i);
        });
      }
    });
  }
  for (auto& t : producers) t.join();
  // stop() drains the queue before joining the worker.
  pool.stop();
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(seen[p].size(), static_cast<std::size_t>(kTasksPerProducer))
        << "producer " << p << " lost tasks";
    for (int i = 0; i < kTasksPerProducer; ++i) {
      ASSERT_EQ(seen[p][i], i) << "producer " << p << " reordered";
    }
  }
}

TEST(ReactorPoolTest, WorkerLoopsDispatchIoIndependently) {
  ReactorPool pool(3);
  Pipe p1;
  Pipe p2;
  std::atomic<int> hits1{0};
  std::atomic<int> hits2{0};
  // Register each fd on its owner loop from that loop's thread, exactly the
  // install-task pattern CoordinatorNode uses.
  pool.post(1, [&] {
    pool.loop(1).add_fd(p1.read_end(), [&](std::uint32_t) {
      p1.drain();
      hits1.fetch_add(1);
    });
  });
  pool.post(2, [&] {
    pool.loop(2).add_fd(p2.read_end(), [&](std::uint32_t) {
      p2.drain();
      hits2.fetch_add(1);
    });
  });
  pool.start();
  p1.write_byte();
  p2.write_byte();
  const auto t0 = std::chrono::steady_clock::now();
  while ((hits1.load() < 1 || hits2.load() < 1) &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(hits1.load(), 1);
  EXPECT_GE(hits2.load(), 1);
  // Teardown on the owner loops before the reactors are destroyed.
  pool.post(1, [&] { pool.loop(1).remove_fd(p1.read_end()); });
  pool.post(2, [&] { pool.loop(2).remove_fd(p2.read_end()); });
  pool.stop();
}

TEST(ReactorPoolTest, PerLoopStatsGaugesAppearInRegistry) {
  ReactorPool pool(2);
  pool.enable_loop_stats();
  pool.loop(0).run_once(0);
  const std::string prom = obs::metrics().to_prometheus();
  EXPECT_NE(prom.find("volley_reactor_loop0_wakeups"), std::string::npos);
  EXPECT_NE(prom.find("volley_reactor_loop1_io_events"), std::string::npos);
  EXPECT_NE(prom.find("volley_reactor_loop0_syscalls"), std::string::npos);
}

}  // namespace
}  // namespace volley::net
