// Unit tests for the epoll reactor and its calendar-ring timer wheel
// (net/reactor.h): fd registration and dispatch, EPOLLOUT re-arm, timer
// ordering / cancellation / beyond-one-lap deadlines, cross-thread wakeup,
// and the VOLLEY_POLL_LOOP resolution helper.
#include "net/reactor.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

namespace volley::net {
namespace {

struct Pipe {
  int fds[2]{-1, -1};
  Pipe() {
    EXPECT_EQ(::pipe(fds), 0);
    // Nonblocking read end so drain() terminates with EAGAIN when empty.
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_end() const { return fds[0]; }
  void write_byte() const {
    const char c = 'x';
    ASSERT_EQ(::write(fds[1], &c, 1), 1);
  }
  void drain() const {
    char c = 0;
    while (::read(fds[0], &c, 1) == 1) {
    }
  }
};

TEST(ReactorTest, DispatchesReadableFd) {
  Reactor r;
  Pipe p;
  int hits = 0;
  r.add_fd(p.read_end(), [&](std::uint32_t events) {
    EXPECT_TRUE(Reactor::readable(events));
    ++hits;
    char c = 0;
    ASSERT_EQ(::read(p.read_end(), &c, 1), 1);
  });
  EXPECT_EQ(r.run_once(0), 0);  // nothing pending yet
  p.write_byte();
  EXPECT_EQ(r.run_once(100), 1);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(r.run_once(0), 0);  // level-triggered, drained: quiet again
  EXPECT_EQ(r.watched_fds(), 1U);
  r.remove_fd(p.read_end());
  EXPECT_EQ(r.watched_fds(), 0U);
  p.write_byte();
  EXPECT_EQ(r.run_once(0), 0);  // deregistered fds never dispatch
  EXPECT_EQ(hits, 1);
}

TEST(ReactorTest, RemoveFdIsIdempotentAndSafeForUnknown) {
  Reactor r;
  r.remove_fd(12345);  // never added: no-op
  Pipe p;
  r.add_fd(p.read_end(), [](std::uint32_t) {});
  r.remove_fd(p.read_end());
  r.remove_fd(p.read_end());
  EXPECT_EQ(r.watched_fds(), 0U);
}

TEST(ReactorTest, UpdateHandlerSwapsDispatchTarget) {
  Reactor r;
  Pipe p;
  int first = 0;
  int second = 0;
  r.add_fd(p.read_end(), [&](std::uint32_t) {
    ++first;
    p.drain();
  });
  p.write_byte();
  r.run_once(100);
  r.update_handler(p.read_end(), [&](std::uint32_t) {
    ++second;
    p.drain();
  });
  p.write_byte();
  r.run_once(100);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(ReactorTest, WantWriteArmsEpollout) {
  Reactor r;
  Pipe p;
  // A pipe write end is writable immediately; EPOLLOUT only fires once
  // armed.
  bool writable = false;
  r.add_fd(p.fds[1], [&](std::uint32_t events) {
    if (Reactor::writable(events)) writable = true;
  });
  EXPECT_EQ(r.run_once(0), 0);  // EPOLLOUT not armed: quiet
  r.set_want_write(p.fds[1], true);
  EXPECT_GE(r.run_once(100), 1);
  EXPECT_TRUE(writable);
  writable = false;
  r.set_want_write(p.fds[1], false);
  EXPECT_EQ(r.run_once(0), 0);
  EXPECT_FALSE(writable);
}

TEST(ReactorTimerTest, FiresInDeadlineOrder) {
  Reactor r;
  std::vector<int> order;
  r.add_timer(30, [&] { order.push_back(3); });
  r.add_timer(10, [&] { order.push_back(1); });
  r.add_timer(20, [&] { order.push_back(2); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(500);
  while (order.size() < 3 && std::chrono::steady_clock::now() < deadline) {
    r.run_once(50);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(r.pending_timers(), 0U);
  EXPECT_FALSE(r.next_deadline_ms().has_value());
}

TEST(ReactorTimerTest, CancelPreventsFiring) {
  Reactor r;
  bool fired = false;
  bool kept = false;
  const auto id = r.add_timer(10, [&] { fired = true; });
  r.add_timer(20, [&] { kept = true; });
  r.cancel_timer(id);
  EXPECT_EQ(r.pending_timers(), 1U);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(500);
  while (!kept && std::chrono::steady_clock::now() < deadline) {
    r.run_once(50);
  }
  EXPECT_FALSE(fired);
  EXPECT_TRUE(kept);
  r.cancel_timer(id);      // already fired/cancelled: no-op
  r.cancel_timer(999999);  // unknown: no-op
}

TEST(ReactorTimerTest, ZeroDelayFiresOnNextTurn) {
  Reactor r;
  bool fired = false;
  r.add_timer(0, [&] { fired = true; });
  ASSERT_TRUE(r.next_deadline_ms().has_value());
  r.run_once(100);
  EXPECT_TRUE(fired);
}

TEST(ReactorTimerTest, CallbackMayArmAnotherTimer) {
  Reactor r;
  int chain = 0;
  std::function<void()> again = [&] {
    if (++chain < 3) r.add_timer(5, again);
  };
  r.add_timer(5, again);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(1000);
  while (chain < 3 && std::chrono::steady_clock::now() < deadline) {
    r.run_once(50);
  }
  EXPECT_EQ(chain, 3);
}

TEST(ReactorTimerTest, BeyondOneLapDeadlineSurvives) {
  // The wheel spans 512 ms at 1 ms resolution; a 700 ms deadline wraps the
  // ring and must not fire on the first pass over its slot.
  Reactor r;
  bool far_fired = false;
  bool near_fired = false;
  r.add_timer(700, [&] { far_fired = true; });
  r.add_timer(20, [&] { near_fired = true; });
  const auto start = std::chrono::steady_clock::now();
  while (!near_fired &&
         std::chrono::steady_clock::now() - start <
             std::chrono::milliseconds(400)) {
    r.run_once(50);
  }
  EXPECT_TRUE(near_fired);
  EXPECT_FALSE(far_fired);  // 700 ms not yet elapsed
  EXPECT_EQ(r.pending_timers(), 1U);
  // The far deadline is still tracked and correctly bounded.
  const auto due = r.next_deadline_ms();
  ASSERT_TRUE(due.has_value());
  while (!far_fired &&
         std::chrono::steady_clock::now() - start <
             std::chrono::milliseconds(2000)) {
    r.run_once(100);
  }
  EXPECT_TRUE(far_fired);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 700);  // never early
}

TEST(ReactorTimerTest, TimerNeverFiresEarly) {
  Reactor r;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point fired_at;
  bool fired = false;
  r.add_timer(50, [&] {
    fired = true;
    fired_at = std::chrono::steady_clock::now();
  });
  while (!fired && std::chrono::steady_clock::now() - start <
                       std::chrono::milliseconds(1000)) {
    r.run_once(10);
  }
  ASSERT_TRUE(fired);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(fired_at -
                                                                  start)
                .count(),
            50);
}

TEST(ReactorTest, WakeupUnblocksFromAnotherThread) {
  Reactor r;
  std::thread poker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    r.wakeup();
  });
  const auto start = std::chrono::steady_clock::now();
  // No fds, no timers: without wakeup() this would sleep the full bound.
  r.run_once(5000);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  poker.join();
  EXPECT_LT(waited, 4000);
}

TEST(ReactorTest, RunOnceForSupportsSubMillisecondWaits) {
  Reactor r;
  const auto start = std::chrono::steady_clock::now();
  r.run_once_for(std::chrono::microseconds(300));
  const auto waited_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Just bounded sanity: returned well under a full millisecond-loop tick.
  EXPECT_LT(waited_us, 100000);
}

TEST(ReactorTest, StatsCountWakeupsEventsAndTimers) {
  Reactor r;
  Pipe p;
  r.add_fd(p.read_end(), [&](std::uint32_t) { p.drain(); });
  bool fired = false;
  r.add_timer(1, [&] { fired = true; });
  p.write_byte();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(500);
  while (!fired && std::chrono::steady_clock::now() < deadline) {
    r.run_once(20);
  }
  EXPECT_GE(r.stats().wakeups, 1);
  EXPECT_GE(r.stats().io_events, 1);
  EXPECT_GE(r.stats().timers_fired, 1);
}

TEST(PollLoopEnvTest, ResolvePollLoopHonorsOverride) {
  EXPECT_FALSE(resolve_poll_loop(0));  // forced reactor
  EXPECT_TRUE(resolve_poll_loop(1));   // forced legacy
  // -1 follows the environment; both outcomes are legal here, it must just
  // agree with poll_loop_from_env().
  EXPECT_EQ(resolve_poll_loop(-1), poll_loop_from_env());
}

}  // namespace
}  // namespace volley::net
