// Unit tests for the stochastic-process building blocks (src/trace/
// generators.h) and the TimeSeries container.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "trace/generators.h"
#include "trace/trace.h"

namespace volley {
namespace {

TEST(DiurnalCurve, PeaksAtPhaseAndBottomsOppositely) {
  DiurnalCurve curve(100, 0.8, 25);
  EXPECT_NEAR(curve.multiplier(25), 1.0, 1e-12);
  EXPECT_NEAR(curve.multiplier(75), 0.2, 1e-12);  // 1 - depth
}

TEST(DiurnalCurve, StaysWithinBand) {
  DiurnalCurve curve(1440, 0.9, 0);
  for (Tick t = 0; t < 3000; ++t) {
    const double m = curve.multiplier(t);
    EXPECT_GE(m, 0.1 - 1e-12);
    EXPECT_LE(m, 1.0 + 1e-12);
  }
}

TEST(DiurnalCurve, IsPeriodic) {
  DiurnalCurve curve(720, 0.5, 100);
  for (Tick t = 0; t < 720; t += 37) {
    EXPECT_NEAR(curve.multiplier(t), curve.multiplier(t + 720), 1e-12);
  }
}

TEST(DiurnalCurve, ZeroDepthIsFlat) {
  DiurnalCurve curve(100, 0.0);
  for (Tick t = 0; t < 200; ++t) EXPECT_DOUBLE_EQ(curve.multiplier(t), 1.0);
}

TEST(DiurnalCurve, Validation) {
  EXPECT_THROW(DiurnalCurve(0, 0.5), std::invalid_argument);
  EXPECT_THROW(DiurnalCurve(100, 1.0), std::invalid_argument);
  EXPECT_THROW(DiurnalCurve(100, -0.1), std::invalid_argument);
}

TEST(OuProcess, StaysInBounds) {
  OuProcess::Options o;
  o.lo = 0.0;
  o.hi = 1.0;
  o.sigma = 0.5;  // aggressive noise to stress the clamp
  OuProcess p(o);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double x = p.next(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(OuProcess, RevertsTowardMean) {
  OuProcess::Options o;
  o.mean = 0.8;
  o.theta = 0.2;
  o.sigma = 0.01;
  o.start = 0.1;
  OuProcess p(o);
  Rng rng(5);
  double x = 0.0;
  for (int i = 0; i < 500; ++i) x = p.next(rng);
  EXPECT_NEAR(x, 0.8, 0.15);
}

TEST(OuProcess, NoNoiseConvergesExactly) {
  OuProcess::Options o;
  o.mean = 0.5;
  o.theta = 0.5;
  o.sigma = 0.0;
  o.start = 0.0;
  OuProcess p(o);
  Rng rng(7);
  double x = 0.0;
  for (int i = 0; i < 100; ++i) x = p.next(rng);
  EXPECT_NEAR(x, 0.5, 1e-9);
}

TEST(OuProcess, Validation) {
  OuProcess::Options o;
  o.theta = 0.0;
  EXPECT_THROW(OuProcess{o}, std::invalid_argument);
  o = OuProcess::Options{};
  o.lo = 1.0;
  o.hi = 0.0;
  EXPECT_THROW(OuProcess{o}, std::invalid_argument);
}

TEST(OuProcess, JumpToClamps) {
  OuProcess::Options o;
  OuProcess p(o);
  p.jump_to(100.0);
  EXPECT_DOUBLE_EQ(p.current(), o.hi);
}

TEST(BurstProcess, ZeroOutsideEpisodes) {
  BurstProcess::Options o;
  o.mean_gap = 1e9;  // effectively never
  Rng rng(9);
  BurstProcess p(o, rng);
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(p.next(rng), 0.0);
}

TEST(BurstProcess, EpisodesRampHoldAndDecay) {
  BurstProcess::Options o;
  o.mean_gap = 50;
  o.ramp = 5;
  o.plateau = 5;
  o.decay = 5;
  o.peak_lo = o.peak_hi = 1.0;  // deterministic peak
  Rng rng(11);
  BurstProcess p(o, rng);
  // Find an episode and check its shape.
  std::vector<double> intensities;
  for (int i = 0; i < 5000 && intensities.empty(); ++i) {
    if (p.next(rng) > 0.0) {
      // Re-collect the remainder of this episode.
      intensities.push_back(0.2);  // the first ramp step we just consumed
      for (int j = 0; j < 14; ++j) intensities.push_back(p.next(rng));
    }
  }
  ASSERT_EQ(intensities.size(), 15u);
  // Ramp increases...
  for (int i = 1; i < 5; ++i) EXPECT_GE(intensities[i], intensities[i - 1]);
  // ...plateau at peak...
  for (int i = 5; i < 10; ++i) EXPECT_NEAR(intensities[i], 1.0, 1e-12);
  // ...decay decreases.
  for (int i = 11; i < 15; ++i) EXPECT_LE(intensities[i], intensities[i - 1]);
}

TEST(BurstProcess, MeanGapRoughlyRespected) {
  BurstProcess::Options o;
  o.mean_gap = 200;
  o.ramp = 2;
  o.plateau = 2;
  o.decay = 2;
  Rng rng(13);
  BurstProcess p(o, rng);
  int episodes = 0;
  bool in_episode = false;
  const int ticks = 200000;
  for (int i = 0; i < ticks; ++i) {
    const bool active = p.next(rng) > 0.0;
    if (active && !in_episode) ++episodes;
    in_episode = active;
  }
  // Expected roughly ticks / (gap + length) episodes.
  const double expected = ticks / 206.0;
  EXPECT_NEAR(episodes, expected, expected * 0.2);
}

TEST(BurstProcess, Validation) {
  BurstProcess::Options o;
  Rng rng(1);
  o.mean_gap = 0;
  EXPECT_THROW(BurstProcess(o, rng), std::invalid_argument);
  o = BurstProcess::Options{};
  o.ramp = o.plateau = o.decay = 0;
  EXPECT_THROW(BurstProcess(o, rng), std::invalid_argument);
  o = BurstProcess::Options{};
  o.peak_lo = 0.8;
  o.peak_hi = 0.5;
  EXPECT_THROW(BurstProcess(o, rng), std::invalid_argument);
}

TEST(TimeSeries, SumAggregatesElementwise) {
  std::vector<TimeSeries> series;
  series.emplace_back(std::vector<double>{1, 2, 3});
  series.emplace_back(std::vector<double>{10, 20, 30});
  const auto total = TimeSeries::sum(series);
  EXPECT_DOUBLE_EQ(total[0], 11);
  EXPECT_DOUBLE_EQ(total[1], 22);
  EXPECT_DOUBLE_EQ(total[2], 33);
}

TEST(TimeSeries, SumRejectsMismatchedLengths) {
  std::vector<TimeSeries> series;
  series.emplace_back(std::vector<double>{1, 2});
  series.emplace_back(std::vector<double>{1});
  EXPECT_THROW(TimeSeries::sum(series), std::invalid_argument);
}

TEST(TimeSeries, ThresholdForSelectivityIsPercentile) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  TimeSeries ts(std::move(v));
  // k = 10% -> 90th percentile.
  EXPECT_NEAR(ts.threshold_for_selectivity(10.0), 90.1, 0.2);
  EXPECT_THROW(ts.threshold_for_selectivity(-1.0), std::invalid_argument);
}

TEST(TimeSeries, SelectivityControlsAlertFraction) {
  Rng rng(17);
  std::vector<double> v;
  for (int i = 0; i < 100000; ++i) v.push_back(rng.normal(0, 1));
  TimeSeries ts(std::move(v));
  for (double k : {0.5, 2.0, 10.0}) {
    const double threshold = ts.threshold_for_selectivity(k);
    std::size_t above = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i] > threshold) ++above;
    }
    EXPECT_NEAR(static_cast<double>(above) / static_cast<double>(ts.size()),
                k / 100.0, 0.002)
        << "k=" << k;
  }
}

TEST(TimeSeries, BasicStats) {
  TimeSeries ts(std::vector<double>{3.0, -1.0, 4.0});
  EXPECT_DOUBLE_EQ(ts.min(), -1.0);
  EXPECT_DOUBLE_EQ(ts.max(), 4.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
}

TEST(SeriesSource, ServesValuesAndCosts) {
  TimeSeries values(std::vector<double>{1, 2, 3});
  TimeSeries costs(std::vector<double>{10, 20, 30});
  SeriesSource source(values, costs);
  EXPECT_DOUBLE_EQ(source.value_at(1), 2);
  EXPECT_DOUBLE_EQ(source.sampling_cost(2), 30);
  EXPECT_EQ(source.length(), 3);
}

TEST(SeriesSource, DefaultCostIsOne) {
  SeriesSource source(TimeSeries(std::vector<double>{5}));
  EXPECT_DOUBLE_EQ(source.sampling_cost(0), 1.0);
}

TEST(SeriesSource, CostLengthMismatchThrows) {
  EXPECT_THROW(SeriesSource(TimeSeries(std::vector<double>{1, 2}),
                            TimeSeries(std::vector<double>{1})),
               std::invalid_argument);
}

TEST(RenderSeries, EvaluatesCallablePerTick) {
  const auto v = render_series(5, [](Tick t) { return static_cast<double>(t * t); });
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[4], 16.0);
}

}  // namespace
}  // namespace volley
