// Unit tests for core::Monitor: scheduling, local violations, forced
// samples (global polls), op accounting and coordination statistics.
#include <gtest/gtest.h>

#include "core/metric_source.h"
#include "core/monitor.h"

namespace volley {
namespace {

AdaptiveSamplerOptions fast_growth() {
  AdaptiveSamplerOptions o;
  o.error_allowance = 0.1;
  o.patience = 2;
  o.max_interval = 8;
  return o;
}

TEST(Monitor, DueAtStartAndAfterInterval) {
  CallableSource source([](Tick) { return 0.0; }, 1000);
  Monitor monitor(0, source, fast_growth(), 100.0);
  EXPECT_TRUE(monitor.due(0));
  monitor.step(0);
  EXPECT_EQ(monitor.next_sample_tick(), 1);  // starts at the default interval
  EXPECT_FALSE(monitor.due(0));
  EXPECT_TRUE(monitor.due(1));
}

TEST(Monitor, StepWhenNotDueThrows) {
  CallableSource source([](Tick) { return 0.0; }, 1000);
  Monitor monitor(0, source, fast_growth(), 100.0);
  monitor.step(0);
  EXPECT_THROW(monitor.step(0), std::logic_error);
}

TEST(Monitor, DetectsLocalViolation) {
  CallableSource source([](Tick t) { return t == 5 ? 50.0 : 0.0; }, 1000);
  Monitor monitor(0, source, fast_growth(), 10.0);
  for (Tick t = 0; t <= 5; ++t) {
    if (!monitor.due(t)) continue;
    const auto outcome = monitor.step(t);
    EXPECT_EQ(outcome.local_violation, t == 5);
  }
  EXPECT_EQ(monitor.local_violations(), 1);
}

TEST(Monitor, GrowsIntervalOnQuietSource) {
  CallableSource source([](Tick t) { return 0.01 * (t % 2); }, 10000);
  Monitor monitor(0, source, fast_growth(), 1000.0);
  for (Tick t = 0; t < 200; ++t) {
    if (monitor.due(t)) monitor.step(t);
  }
  EXPECT_GT(monitor.interval(), 1);
  // Far fewer ops than ticks.
  EXPECT_LT(monitor.scheduled_ops(), 150);
}

TEST(Monitor, ForcedSampleCountsSeparately) {
  CallableSource source([](Tick) { return 1.0; }, 1000);
  Monitor monitor(0, source, fast_growth(), 10.0);
  monitor.step(0);
  const auto outcome = monitor.force_sample(3);
  EXPECT_EQ(outcome.reason, SampleReason::kGlobalPoll);
  EXPECT_DOUBLE_EQ(outcome.sample.value, 1.0);
  EXPECT_EQ(monitor.scheduled_ops(), 1);
  EXPECT_EQ(monitor.forced_ops(), 1);
}

TEST(Monitor, ForcedSampleAtSameTickIsFree) {
  int reads = 0;
  CallableSource source(
      [&reads](Tick) {
        ++reads;
        return 2.0;
      },
      1000);
  Monitor monitor(0, source, fast_growth(), 10.0);
  monitor.step(0);
  const int reads_after_step = reads;
  const auto outcome = monitor.force_sample(0);  // same tick: cached
  EXPECT_DOUBLE_EQ(outcome.sample.value, 2.0);
  EXPECT_EQ(reads, reads_after_step);  // no second collection
  EXPECT_EQ(monitor.forced_ops(), 0);
}

TEST(Monitor, ForcedSampleReschedulesNextSample) {
  CallableSource source([](Tick) { return 0.0; }, 10000);
  Monitor monitor(0, source, fast_growth(), 1000.0);
  monitor.step(0);
  monitor.force_sample(5);
  // The forced observation restarts the schedule from tick 5.
  EXPECT_GE(monitor.next_sample_tick(), 6);
}

TEST(Monitor, TimeMustMoveForward) {
  CallableSource source([](Tick) { return 0.0; }, 1000);
  Monitor monitor(0, source, fast_growth(), 10.0);
  monitor.force_sample(10);
  EXPECT_THROW(monitor.force_sample(5), std::logic_error);
  // A scheduled step at an already-sampled tick is a logic error too.
  EXPECT_THROW(monitor.step(10), std::logic_error);
}

TEST(Monitor, CoordStatsAverageAndDrain) {
  CallableSource source([](Tick t) { return 0.01 * (t % 2); }, 10000);
  Monitor monitor(0, source, fast_growth(), 1000.0);
  for (Tick t = 0; t < 100; ++t) {
    if (monitor.due(t)) monitor.step(t);
  }
  const auto stats = monitor.drain_coord_stats();
  EXPECT_GT(stats.observations, 0);
  EXPECT_GE(stats.avg_gain, 0.0);
  EXPECT_GE(stats.avg_allowance, 0.0);
  // Drained: the next call starts fresh.
  const auto empty = monitor.drain_coord_stats();
  EXPECT_EQ(empty.observations, 0);
}

TEST(Monitor, TotalCostAccumulatesSourceCosts) {
  class CostlySource final : public MetricSource {
   public:
    double value_at(Tick) const override { return 0.0; }
    Tick length() const override { return 1000; }
    double sampling_cost(Tick t) const override {
      return static_cast<double>(t + 1);
    }
  };
  CostlySource source;
  Monitor monitor(0, source, fast_growth(), 10.0);
  monitor.step(0);        // cost 1
  monitor.force_sample(2);  // cost 3
  EXPECT_DOUBLE_EQ(monitor.total_cost(), 4.0);
}

TEST(Monitor, SetLocalThresholdTakesEffect) {
  CallableSource source([](Tick) { return 5.0; }, 1000);
  Monitor monitor(0, source, fast_growth(), 10.0);
  EXPECT_FALSE(monitor.step(0).local_violation);
  monitor.set_local_threshold(4.0);
  EXPECT_TRUE(monitor.force_sample(1).local_violation);
}

TEST(Monitor, AllowanceUpdatePropagatesToSampler) {
  CallableSource source([](Tick) { return 0.0; }, 1000);
  Monitor monitor(0, source, fast_growth(), 10.0);
  monitor.set_error_allowance(0.42);
  EXPECT_DOUBLE_EQ(monitor.error_allowance(), 0.42);
  EXPECT_DOUBLE_EQ(monitor.sampler().error_allowance(), 0.42);
}

}  // namespace
}  // namespace volley
