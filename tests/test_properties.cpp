// Property-based (parameterized) suites over the core invariants:
//  * soundness of the Chebyshev beta bound across a parameter grid,
//  * accuracy: achieved episode miss rate tracks the error allowance,
//  * cost monotonicity in err, and the never-worse-than-periodic bound,
//  * allocation invariants (sum preservation, floor) under random stats.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "core/error_allocation.h"
#include "core/likelihood.h"
#include "sim/runner.h"
#include "sim/simulation.h"

namespace volley {
namespace {

// ---------------------------------------------------------------------
// Chebyshev bound soundness across (mu, sigma, margin, interval).
using BoundParams = std::tuple<double, double, double, int>;

class BetaBoundSoundness : public ::testing::TestWithParam<BoundParams> {};

TEST_P(BetaBoundSoundness, UpperBoundsMonteCarloRate) {
  const auto [mu, sigma, margin, interval] = GetParam();
  const double threshold = 10.0;
  const double v0 = threshold - margin;
  const DeltaStats stats{mu, sigma};
  const double bound =
      beta_bound_with(v0, threshold, stats, interval, chebyshev_step_bound);

  Rng rng(977);
  const int trials = 8000;
  int violations = 0;
  for (int trial = 0; trial < trials; ++trial) {
    double x = v0;
    for (int i = 0; i < interval; ++i) {
      x += rng.normal(mu, sigma);
      if (x > threshold) {
        ++violations;
        break;
      }
    }
  }
  const double rate = static_cast<double>(violations) / trials;
  EXPECT_GE(bound + 0.015, rate)
      << "mu=" << mu << " sigma=" << sigma << " margin=" << margin
      << " I=" << interval;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BetaBoundSoundness,
    ::testing::Combine(::testing::Values(-0.2, 0.0, 0.3),   // mu
                       ::testing::Values(0.5, 1.0, 2.0),    // sigma
                       ::testing::Values(2.0, 5.0, 10.0),   // margin
                       ::testing::Values(1, 3, 8)));        // interval

// ---------------------------------------------------------------------
// Achieved accuracy vs err on a synthetic workload with rare violations.
class AccuracyTracksAllowance : public ::testing::TestWithParam<double> {};

TEST_P(AccuracyTracksAllowance, TickMissRateNearOrBelowErr) {
  const double err = GetParam();
  // Random-walk-ish series with threshold at the 99th percentile; run long
  // enough that a handful of episodes exist.
  Rng rng(1234);
  const Tick ticks = 40000;
  TimeSeries s(static_cast<std::size_t>(ticks));
  double x = 0.0;
  for (Tick t = 0; t < ticks; ++t) {
    x = 0.95 * x + rng.normal(0.0, 0.25);
    s[static_cast<std::size_t>(t)] = x;
  }
  TaskSpec spec;
  spec.global_threshold = s.threshold_for_selectivity(1.0);
  spec.error_allowance = err;
  spec.max_interval = 40;
  const auto r = run_volley_single(spec, s);
  ASSERT_GT(r.true_alert_ticks, 0);
  // Chebyshev conservatism: the per-tick miss rate should sit near or below
  // err; allow modest slack because the bound's independence assumption is
  // approximate on an autocorrelated walk.
  EXPECT_LE(r.tick_miss_rate(), std::max(2.5 * err, 0.02))
      << "err=" << err << " ratio=" << r.sampling_ratio();
}

INSTANTIATE_TEST_SUITE_P(Allowances, AccuracyTracksAllowance,
                         ::testing::Values(0.002, 0.004, 0.008, 0.016,
                                           0.032));

// ---------------------------------------------------------------------
// Cost monotonicity: on one workload, larger err never costs (much) more,
// and Volley never exceeds the periodic reference by more than the global
// polls it owes to detection.
class CostMonotoneInErr
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CostMonotoneInErr, RatioWithinBoundsAndMonotone) {
  const auto [seed, selectivity] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Tick ticks = 20000;
  TimeSeries s(static_cast<std::size_t>(ticks));
  double x = 0.0;
  for (Tick t = 0; t < ticks; ++t) {
    x = 0.9 * x + rng.normal(0.0, 0.3);
    s[static_cast<std::size_t>(t)] = x;
  }
  TaskSpec spec;
  spec.global_threshold = s.threshold_for_selectivity(selectivity);
  spec.max_interval = 40;

  double prev_ratio = 1e18;
  for (double err : {0.002, 0.008, 0.032}) {
    spec.error_allowance = err;
    const auto r = run_volley_single(spec, s);
    // Sampling never exceeds periodic-at-Id except for poll bookkeeping.
    EXPECT_LE(r.sampling_ratio(), 1.0 + 1e-9);
    EXPECT_LE(r.sampling_ratio(), prev_ratio + 0.03)
        << "err=" << err;
    prev_ratio = r.sampling_ratio();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CostMonotoneInErr,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.5, 2.0, 8.0)));

// ---------------------------------------------------------------------
// Allocation invariants under randomized coordination statistics.
class AllocationInvariants : public ::testing::TestWithParam<int> {};

TEST_P(AllocationInvariants, SumAndFloorPreserved) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  const double err = rng.uniform(0.001, 0.1);
  std::vector<double> current(n, err / static_cast<double>(n));
  std::vector<CoordStats> stats(n);
  for (auto& s : stats) {
    s.avg_gain = rng.uniform() < 0.2 ? 0.0 : rng.uniform(0.0, 0.5);
    s.avg_allowance = rng.uniform(0.0, 0.05);
    s.observations = 10;
  }
  AdaptiveAllocation allocator;
  auto out = allocator.allocate(err, current, stats);
  ASSERT_EQ(out.size(), n);
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_NEAR(sum, err, 1e-9 * std::max(1.0, err));
  bool any_gain = false;
  for (const auto& s : stats) any_gain |= s.avg_gain > 0.0;
  if (any_gain) {
    for (double a : out) EXPECT_GE(a, err * 0.01 - 1e-12);
  }
  // Iterating the allocator from its own output stays feasible.
  out = allocator.allocate(err, out, stats);
  EXPECT_NEAR(std::accumulate(out.begin(), out.end(), 0.0), err,
              1e-9 * std::max(1.0, err));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationInvariants,
                         ::testing::Range(1, 26));

// ---------------------------------------------------------------------
// Sampler safety net across slack/patience settings: on a quiet trace the
// interval grows; after a regime change to hot values it collapses to the
// default within one sample.
class SamplerKnobs
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(SamplerKnobs, CollapseIsImmediateAfterRegimeChange) {
  const auto [gamma, patience] = GetParam();
  AdaptiveSamplerOptions o;
  o.error_allowance = 0.02;
  o.slack_ratio = gamma;
  o.patience = patience;
  o.max_interval = 20;
  AdaptiveSampler sampler(o, 100.0);
  Rng rng(7);
  for (int i = 0; i < 30 * patience; ++i) {
    sampler.observe(rng.normal(0.0, 0.5), sampler.interval());
  }
  ASSERT_GT(sampler.interval(), 1) << "gamma=" << gamma << " p=" << patience;
  sampler.observe(99.5, sampler.interval());
  EXPECT_EQ(sampler.interval(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, SamplerKnobs,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5),
                       ::testing::Values(1, 5, 20)));

// ---------------------------------------------------------------------
// The threshold-splitting contract across monitor counts: no global
// violation is possible while every local value is under its local
// threshold (Section II-A), for any weighting.
class ThresholdSplit : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSplit, LocalSafetyImpliesGlobalSafety) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 17 + 1);
  std::vector<double> weights;
  for (int i = 0; i < n; ++i) weights.push_back(rng.uniform(0.1, 2.0));
  const double T = 42.0;
  const auto locals = split_threshold(T, static_cast<std::size_t>(n), weights);
  EXPECT_NEAR(std::accumulate(locals.begin(), locals.end(), 0.0), T, 1e-9);
  // Values strictly below local thresholds can never sum above T.
  double sum = 0.0;
  for (double t : locals) sum += t * 0.999;
  EXPECT_LT(sum, T);
}

INSTANTIATE_TEST_SUITE_P(MonitorCounts, ThresholdSplit,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 40));

// ---------------------------------------------------------------------
// Driver equivalence: the synchronous runner and the discrete-event
// Simulation advance the same Coordinator logic, so the same task on the
// same data must produce bit-identical accounting under both drivers.
class DriverEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DriverEquivalence, SyncAndEventQueueAgree) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 5);
  const Tick ticks = 3000;
  std::vector<TimeSeries> series;
  for (int m = 0; m < 3; ++m) {
    TimeSeries s(static_cast<std::size_t>(ticks));
    double x = 0.0;
    for (Tick t = 0; t < ticks; ++t) {
      x = 0.9 * x + rng.normal(0.0, 0.3);
      s[static_cast<std::size_t>(t)] = x;
    }
    series.push_back(std::move(s));
  }
  const TimeSeries aggregate = TimeSeries::sum(series);
  TaskSpec spec;
  spec.global_threshold = aggregate.threshold_for_selectivity(1.0);
  spec.error_allowance = 0.03;
  spec.max_interval = 12;
  spec.updating_period = 500;
  const auto locals = split_threshold(spec.global_threshold, series.size());

  // Synchronous driver.
  const auto sync = run_volley(spec, series, locals);

  // Event-queue driver over an identical coordinator.
  std::vector<std::unique_ptr<SeriesSource>> sources;
  std::vector<std::unique_ptr<Monitor>> monitors;
  for (std::size_t i = 0; i < series.size(); ++i) {
    sources.push_back(std::make_unique<SeriesSource>(series[i]));
    monitors.push_back(std::make_unique<Monitor>(
        static_cast<MonitorId>(i), *sources[i],
        spec.sampler_options(spec.error_allowance), locals[i]));
  }
  Simulation sim;
  const auto task = sim.add_task(
      std::make_unique<Coordinator>(spec, std::move(monitors),
                                    std::make_unique<AdaptiveAllocation>()),
      15.0, ticks);
  sim.run(1e12);

  const Coordinator& coordinator = sim.coordinator(task);
  EXPECT_EQ(coordinator.total_ops(), sync.total_ops());
  EXPECT_EQ(coordinator.global_polls(), sync.global_polls);
  EXPECT_EQ(coordinator.global_violations(), sync.detected_alert_ticks);
  EXPECT_EQ(coordinator.reallocations(), sync.reallocations);
  EXPECT_EQ(sim.stats(task).ticks_run, ticks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverEquivalence, ::testing::Range(1, 9));

}  // namespace
}  // namespace volley
