// Unit tests for src/stats: Welford stats (the paper's online update rules),
// windowed restart policy, quantiles (exact + P2), histogram, correlation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "common/rng.h"
#include "stats/correlation.h"
#include "stats/histogram.h"
#include "stats/online_stats.h"
#include "stats/quantile.h"

namespace volley {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  OnlineStats s;
  for (double x : xs) s.add(x);
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, IsNumericallyStableForLargeOffsets) {
  // Catastrophic cancellation check: tiny variance around a huge mean.
  OnlineStats s;
  const double base = 1e12;
  for (int i = 0; i < 1000; ++i) s.add(base + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(3);
  OnlineStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i < 200 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(OnlineStats, MergeWithEmptyIsNoop) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(OnlineStats, MergePropertyShardsMatchConcatenatedStream) {
  // Parallel-Welford law: splitting a stream across K shards (any
  // interleaving) and merging gives the statistics of the concatenated
  // stream. This is what registry merging in parallel sweeps leans on.
  for (int shard_count : {2, 3, 5, 8}) {
    Rng rng(static_cast<std::uint64_t>(100 + shard_count));
    OnlineStats whole;
    std::vector<OnlineStats> shards(static_cast<std::size_t>(shard_count));
    for (int i = 0; i < 2000; ++i) {
      const double x = rng.normal(-3.0, 7.0);
      whole.add(x);
      shards[static_cast<std::size_t>(
                 rng.uniform_int(0, shard_count - 1))]
          .add(x);
    }
    OnlineStats merged;
    for (const auto& shard : shards) merged.merge(shard);
    EXPECT_EQ(merged.count(), whole.count()) << shard_count << " shards";
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12)
        << shard_count << " shards";
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12)
        << shard_count << " shards";
  }
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(WindowedStats, RejectsBadWindow) {
  EXPECT_THROW(WindowedStats(0), std::invalid_argument);
  EXPECT_THROW(WindowedStats(10, -1), std::invalid_argument);
}

TEST(WindowedStats, EmptyHasNoStatistics) {
  WindowedStats s(100);
  EXPECT_FALSE(s.mean().has_value());
  EXPECT_FALSE(s.stddev().has_value());
}

TEST(WindowedStats, RestartsAfterWindow) {
  WindowedStats s(/*window=*/10, /*warmup=*/0);
  for (int i = 0; i < 10; ++i) s.add(100.0);
  EXPECT_NEAR(*s.mean(), 100.0, 1e-12);
  // The 11th sample opens a fresh window; with warmup 0 the new (single
  // sample) statistics take over immediately.
  s.add(0.0);
  EXPECT_EQ(s.current_count(), 1);
  EXPECT_NEAR(*s.mean(), 0.0, 1e-12);
}

TEST(WindowedStats, SnapshotMatchesAccessorsThroughRestartAndWarmup) {
  // The hot-path snapshot() must agree with the mean()/stddev() accessors
  // at every step, in particular across window restarts while the fresh
  // window is still warming up (when both fall back to the previous
  // window's statistics).
  WindowedStats s(/*window=*/10, /*warmup=*/4);
  EXPECT_FALSE(s.snapshot().has_value());
  Rng rng(7);
  for (int i = 0; i < 35; ++i) {
    s.add(rng.normal(1.0, 2.0));
    const auto snap = s.snapshot();
    ASSERT_TRUE(snap.has_value()) << "sample " << i;
    EXPECT_DOUBLE_EQ(snap->mean, *s.mean()) << "sample " << i;
    EXPECT_DOUBLE_EQ(snap->stddev, *s.stddev()) << "sample " << i;
  }
}

TEST(WindowedStats, WarmupServesPreviousWindow) {
  WindowedStats s(/*window=*/10, /*warmup=*/4);
  for (int i = 0; i < 10; ++i) s.add(100.0);
  s.add(0.0);  // new window, 1 < warmup samples
  EXPECT_NEAR(*s.mean(), 100.0, 1e-12);
  s.add(0.0);
  s.add(0.0);
  s.add(0.0);  // 4 == warmup: new window takes over
  EXPECT_NEAR(*s.mean(), 0.0, 1e-12);
}

TEST(WindowedStats, TracksDistributionShift) {
  // The restart policy exists so the estimator follows the recent delta
  // distribution (paper III-B). After a shift and one full window, the old
  // regime must be forgotten.
  WindowedStats s(/*window=*/100, /*warmup=*/8);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) s.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 200; ++i) s.add(rng.normal(50.0, 1.0));
  EXPECT_GT(*s.mean(), 45.0);
}

TEST(ExactQuantile, HandlesEdgesAndInterpolation) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 2.5);
  EXPECT_THROW(exact_quantile(std::vector<double>{}, 0.5),
               std::invalid_argument);
  EXPECT_THROW(exact_quantile(v, 1.5), std::invalid_argument);
}

TEST(ExactQuantile, MultiQuantileMatchesSingle) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform());
  const std::vector<double> qs{0.1, 0.25, 0.5, 0.9, 0.99};
  const auto multi = exact_quantiles(v, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(multi[i], exact_quantile(v, qs[i]));
  }
}

TEST(BoxStats, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const auto box = box_stats(v);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.q1, 26.0);
  EXPECT_DOUBLE_EQ(box.median, 51.0);
  EXPECT_DOUBLE_EQ(box.q3, 76.0);
  EXPECT_DOUBLE_EQ(box.max, 101.0);
}

TEST(P2Quantile, RejectsBadQ) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, ApproximatesUniformMedian) {
  P2Quantile q(0.5);
  Rng rng(31);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.5, 0.02);
}

TEST(P2Quantile, ApproximatesNormalTail) {
  P2Quantile q(0.95);
  Rng rng(37);
  for (int i = 0; i < 200000; ++i) q.add(rng.normal(0.0, 1.0));
  EXPECT_NEAR(q.value(), 1.6449, 0.08);
}

TEST(P2Quantile, ThrowsWithoutSamples) {
  P2Quantile q(0.5);
  EXPECT_THROW(q.value(), std::logic_error);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // underflow -> bin 0
  h.add(25.0);   // overflow -> last bin
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(9), 2);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
}

TEST(Histogram, QuantileInterpolatesWithinBin) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.5);  // all mass in bin [0,1)
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 0.0);
  EXPECT_LE(median, 1.0);
}

TEST(Histogram, MeanTracksInputs) {
  Histogram h(0.0, 100.0, 10);
  h.add(10.0);
  h.add(30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, QuantileOfUniformMassIsLinear) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.25), 0.25, 0.01);
  EXPECT_NEAR(h.quantile(0.75), 0.75, 0.01);
}

TEST(Histogram, RenderMentionsEveryBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const auto text = h.render(10);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[1, 2)"), std::string::npos);
}

TEST(Pearson, PerfectCorrelationIsOne) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(*pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelationIsMinusOne) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{5, 4, 3, 2, 1};
  EXPECT_NEAR(*pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsUndefined) {
  const std::vector<double> x{1, 1, 1, 1};
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_FALSE(pearson(x, y).has_value());
}

TEST(Pearson, MismatchedSizesThrow) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1, 2, 3};
  EXPECT_THROW(pearson(x, y), std::invalid_argument);
}

TEST(Pearson, IndependentSeriesNearZero) {
  Rng rng(41);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.normal(0, 1));
    y.push_back(rng.normal(0, 1));
  }
  EXPECT_NEAR(*pearson(x, y), 0.0, 0.03);
}

TEST(LaggedPearson, FindsKnownLag) {
  // y is x delayed by 3 ticks: best lag should be +3 with corr ~ 1.
  Rng rng(43);
  std::vector<double> x(500);
  for (auto& v : x) v = rng.normal(0, 1);
  std::vector<double> y(500, 0.0);
  for (std::size_t i = 3; i < y.size(); ++i) y[i] = x[i - 3];
  const auto best = best_lag_correlation(x, y, 8);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->lag, 3);
  EXPECT_GT(best->corr, 0.95);
}

TEST(LaggedPearson, RespectsMinOverlap) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(lagged_pearson(x, x, 7, 8).has_value());
  EXPECT_TRUE(lagged_pearson(x, x, 0, 8).has_value());
}

TEST(RollingCorrelation, TracksRecentWindowOnly) {
  RollingCorrelation rc(50);
  // First 50: anticorrelated. Then 50: correlated. Window must forget.
  for (int i = 0; i < 50; ++i) rc.add(i, -i);
  EXPECT_LT(*rc.current(), -0.99);
  for (int i = 0; i < 50; ++i) rc.add(i, i);
  EXPECT_GT(*rc.current(), 0.99);
}

}  // namespace
}  // namespace volley
