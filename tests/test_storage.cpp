// Tests for the sample-log persistence substrate: CRC32 correctness,
// write/read round-trips, and crash/corruption recovery semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "storage/sample_log.h"

namespace volley {
namespace {

class SampleLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "volley_sample_log_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, SensitiveToEveryByte) {
  const std::string base = "hello world";
  const auto reference = crc32(base.data(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string mutated = base;
    mutated[i] ^= 0x01;
    EXPECT_NE(crc32(mutated.data(), mutated.size()), reference) << i;
  }
}

TEST_F(SampleLogTest, RoundTripsRecords) {
  Rng rng(5);
  std::vector<SampleRecord> written;
  {
    SampleLogWriter writer(path_);
    for (int i = 0; i < 500; ++i) {
      SampleRecord record;
      record.monitor = static_cast<MonitorId>(rng.uniform_int(0, 1000));
      record.tick = rng.uniform_int(0, 1 << 30);
      record.value = rng.normal(0.0, 100.0);
      record.reason = rng.bernoulli(0.2) ? SampleReason::kGlobalPoll
                                         : SampleReason::kScheduled;
      writer.append(record);
      written.push_back(record);
    }
    writer.flush();
    EXPECT_EQ(writer.records_written(), 500);
  }
  const auto result = read_sample_log(path_);
  EXPECT_TRUE(result.clean);
  ASSERT_EQ(result.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(result.records[i], written[i]) << i;
  }
}

TEST_F(SampleLogTest, EmptyLogIsClean) {
  { SampleLogWriter writer(path_); }
  const auto result = read_sample_log(path_);
  EXPECT_TRUE(result.clean);
  EXPECT_TRUE(result.records.empty());
}

TEST_F(SampleLogTest, TruncatedTailLosesOnlyLastRecord) {
  {
    SampleLogWriter writer(path_);
    for (int i = 0; i < 10; ++i) {
      writer.append(SampleRecord{0, i, static_cast<double>(i),
                                 SampleReason::kScheduled});
    }
  }
  // Simulate a crash mid-append: chop a few bytes off the end.
  {
    std::ifstream in(path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 5);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  const auto result = read_sample_log(path_);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.records.size(), 9u);  // all but the mangled last record
  EXPECT_EQ(result.records.back().tick, 8);
}

TEST_F(SampleLogTest, CorruptionStopsAtBadRecord) {
  {
    SampleLogWriter writer(path_);
    for (int i = 0; i < 10; ++i) {
      writer.append(SampleRecord{1, i, 1.5 * i, SampleReason::kScheduled});
    }
  }
  // Flip one byte inside the 4th record's payload.
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    const std::size_t record_bytes = 25;  // 21 payload + 4 crc
    file.seekp(8 + 3 * record_bytes + 14);
    char byte = 0x5A;
    file.write(&byte, 1);
  }
  const auto result = read_sample_log(path_);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.bad_offset, 8 + 3 * 25u);
}

TEST_F(SampleLogTest, RejectsForeignFiles) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "not a sample log at all";
  }
  EXPECT_THROW(read_sample_log(path_), std::runtime_error);
  EXPECT_THROW(read_sample_log(path_ + ".does_not_exist"),
               std::runtime_error);
}

TEST_F(SampleLogTest, WriterRejectsUnwritablePath) {
  EXPECT_THROW(SampleLogWriter("/nonexistent_dir_volley/x.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace volley
