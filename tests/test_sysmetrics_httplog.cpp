// Unit tests for the system-metric (66-metric catalog) and HTTP-workload
// substrates: catalog shape, ranges, determinism, diurnal/burst features.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/online_stats.h"
#include "trace/httplog.h"
#include "trace/sysmetrics.h"

namespace volley {
namespace {

SysMetricsOptions sys_options() {
  SysMetricsOptions o;
  o.nodes = 3;
  o.ticks = 2000;
  o.ticks_per_day = 2000;
  o.diurnal_phase = 1000;
  o.seed = 5;
  return o;
}

TEST(SysMetrics, CatalogHasExactly66UniqueMetrics) {
  const auto& catalog = SysMetricsGenerator::catalog();
  EXPECT_EQ(catalog.size(), 66u);  // the paper's dataset [19] has 66
  std::set<std::string> names;
  for (const auto& spec : catalog) {
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate metric " << spec.name;
    EXPECT_LT(spec.lo, spec.hi);
    EXPECT_GE(spec.mean, spec.lo);
    EXPECT_LE(spec.mean, spec.hi);
    EXPECT_GT(spec.sigma, 0.0);
  }
}

TEST(SysMetrics, CatalogCoversPaperFamilies) {
  const auto& catalog = SysMetricsGenerator::catalog();
  std::set<std::string> names;
  for (const auto& spec : catalog) names.insert(spec.name);
  // The families the paper names: CPU, memory, vmstat, disk, network.
  EXPECT_TRUE(names.count("cpu.user"));
  EXPECT_TRUE(names.count("mem.free"));
  EXPECT_TRUE(names.count("vmstat.ctx_switches"));
  EXPECT_TRUE(names.count("disk0.usage"));
  EXPECT_TRUE(names.count("net0.rx_mbps"));
}

TEST(SysMetrics, ValuesStayInRange) {
  SysMetricsGenerator gen(sys_options());
  for (std::size_t m : {0u, 10u, 30u, 50u, 65u}) {
    const auto& spec = SysMetricsGenerator::catalog()[m];
    const auto series = gen.generate_metric(0, m);
    for (std::size_t t = 0; t < series.size(); ++t) {
      EXPECT_GE(series[t], spec.lo) << spec.name;
      EXPECT_LE(series[t], spec.hi) << spec.name;
    }
  }
}

TEST(SysMetrics, DeterministicPerNodeAndMetric) {
  SysMetricsGenerator a(sys_options()), b(sys_options());
  const auto sa = a.generate_metric(1, 7);
  const auto sb = b.generate_metric(1, 7);
  for (std::size_t t = 0; t < sa.size(); t += 131) {
    EXPECT_DOUBLE_EQ(sa[t], sb[t]);
  }
  // Different nodes differ.
  const auto other = a.generate_metric(2, 7);
  int diffs = 0;
  for (std::size_t t = 0; t < sa.size(); ++t) {
    if (sa[t] != other[t]) ++diffs;
  }
  EXPECT_GT(diffs, 100);
}

TEST(SysMetrics, OutOfRangeArgumentsThrow) {
  SysMetricsGenerator gen(sys_options());
  EXPECT_THROW(gen.generate_metric(99, 0), std::out_of_range);
  EXPECT_THROW(gen.generate_metric(0, 999), std::out_of_range);
}

TEST(SysMetrics, GenerateNodeReturnsFullCatalog) {
  auto o = sys_options();
  o.ticks = 200;  // keep it quick
  SysMetricsGenerator gen(o);
  const auto node = gen.generate_node(0);
  EXPECT_EQ(node.size(), 66u);
  for (const auto& s : node) EXPECT_EQ(s.ticks(), 200);
}

TEST(SysMetrics, DiurnalGainMovesLoadCoupledMetrics) {
  auto o = sys_options();
  o.ticks = 4000;
  o.ticks_per_day = 2000;
  o.diurnal_phase = 1000;
  o.diurnal_depth = 0.8;
  SysMetricsGenerator gen(o);
  // cpu.user (index 0) has strong positive diurnal gain.
  const auto series = gen.generate_metric(0, 0);
  OnlineStats peak, night;
  for (Tick t = 0; t < o.ticks; ++t) {
    const Tick pos = t % o.ticks_per_day;
    const auto i = static_cast<std::size_t>(t);
    if (std::abs(static_cast<double>(pos - o.diurnal_phase)) < 200) {
      peak.add(series[i]);
    } else if (pos < 200 || pos > o.ticks_per_day - 200) {
      night.add(series[i]);
    }
  }
  EXPECT_GT(peak.mean(), night.mean());
}

TEST(SysMetrics, RelativeJitterExceedsNetflowNight) {
  // The Figure 5(b) rationale: system metrics are noisier relative to their
  // operating range than night-time traffic; just assert the per-tick delta
  // is a visible fraction of the series' own spread.
  SysMetricsGenerator gen(sys_options());
  const auto series = gen.generate_metric(0, 0);  // cpu.user
  OnlineStats deltas, values;
  for (std::size_t t = 1; t < series.size(); ++t) {
    deltas.add(series[t] - series[t - 1]);
    values.add(series[t]);
  }
  EXPECT_GT(deltas.stddev(), 0.05 * values.stddev());
}

HttpLogOptions http_options() {
  HttpLogOptions o;
  o.objects = 5;
  o.ticks = 4000;
  o.ticks_per_day = 4000;
  o.diurnal_phase = 2000;
  o.mean_rps = 20.0;
  o.seed = 7;
  return o;
}

TEST(HttpLog, GeneratesAllObjects) {
  HttpLogGenerator gen(http_options());
  const auto traces = gen.generate();
  ASSERT_EQ(traces.size(), 5u);
  for (const auto& t : traces) EXPECT_EQ(t.rate.ticks(), 4000);
}

TEST(HttpLog, Deterministic) {
  HttpLogGenerator a(http_options()), b(http_options());
  const auto ta = a.generate();
  const auto tb = b.generate();
  for (std::size_t t = 0; t < ta[0].rate.size(); t += 211) {
    EXPECT_DOUBLE_EQ(ta[0].rate[t], tb[0].rate[t]);
  }
}

TEST(HttpLog, RatesAreNonNegativeCounts) {
  HttpLogGenerator gen(http_options());
  const auto traces = gen.generate();
  for (const auto& tr : traces) {
    for (std::size_t t = 0; t < tr.rate.size(); ++t) {
      EXPECT_GE(tr.rate[t], 0.0);
      EXPECT_DOUBLE_EQ(tr.rate[t], std::floor(tr.rate[t]));  // counts
    }
  }
}

TEST(HttpLog, PopularObjectDominates) {
  HttpLogGenerator gen(http_options());
  const auto traces = gen.generate();
  EXPECT_GT(traces[0].rate.mean(), 2.0 * traces[4].rate.mean());
}

TEST(HttpLog, OffPeakValleyIsDeep) {
  auto o = http_options();
  o.diurnal_depth = 0.9;
  o.flash_boost = 0.0;  // isolate the diurnal component
  HttpLogGenerator gen(o);
  const auto traces = gen.generate();
  OnlineStats peak, night;
  for (Tick t = 0; t < o.ticks; ++t) {
    const auto i = static_cast<std::size_t>(t);
    if (std::abs(static_cast<double>(t - o.diurnal_phase)) < 300) {
      peak.add(traces[0].rate[i]);
    } else if (t < 300 || t > o.ticks - 300) {
      night.add(traces[0].rate[i]);
    }
  }
  EXPECT_LT(night.mean(), 0.3 * peak.mean());
}

TEST(HttpLog, FlashCrowdsCreateHeavyUpperTail) {
  auto quiet_opt = http_options();
  quiet_opt.flash_boost = 0.0;
  auto bursty_opt = http_options();
  bursty_opt.flash_boost = 8.0;
  bursty_opt.flash.mean_gap = 500;
  const auto quiet = HttpLogGenerator(quiet_opt).generate();
  const auto bursty = HttpLogGenerator(bursty_opt).generate();
  const double q_hi = quiet[0].rate.threshold_for_selectivity(0.5);
  const double b_hi = bursty[0].rate.threshold_for_selectivity(0.5);
  const double q_med = quiet[0].rate.threshold_for_selectivity(50.0);
  const double b_med = bursty[0].rate.threshold_for_selectivity(50.0);
  // Bursts stretch the tail much more than the median.
  EXPECT_GT(b_hi / std::max(b_med, 1.0), 1.5 * q_hi / std::max(q_med, 1.0));
}

TEST(HttpLog, SynthesizeTickProducesRequestedCount) {
  HttpLogGenerator gen(http_options());
  Rng rng(9);
  const auto records = gen.synthesize_tick(42, 2, 17, rng);
  EXPECT_EQ(records.size(), 17u);
  int errors = 0;
  for (const auto& rec : records) {
    EXPECT_EQ(rec.tick, 42);
    EXPECT_EQ(rec.object, 2u);
    EXPECT_GT(rec.bytes, 0);
    if (rec.status != 200) ++errors;
  }
  EXPECT_LT(errors, 5);
  EXPECT_THROW(gen.synthesize_tick(0, 0, -1, rng), std::invalid_argument);
}

TEST(HttpLog, OptionsValidation) {
  auto o = http_options();
  o.objects = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = http_options();
  o.mean_rps = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = http_options();
  o.error_rate = 2.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace volley
