// Tests for the declarative scenario engine (scenario/json, scenario/scenario)
// and the soak runner (scenario/soak): strict JSON parsing, scenario
// validation (unknown profiles, overlapping fault windows, phase tiling),
// deterministic builders, byte-identical sim replay, invariant detection,
// and a net-mode smoke run through the chaos proxy.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenario/json.h"
#include "scenario/scenario.h"
#include "scenario/soak.h"

namespace volley::scenario {
namespace {

// --- JSON parser -----------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  const auto v = JsonValue::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "hi\nthere", "n": -3})");
  const auto& obj = v.as_object("root");
  EXPECT_DOUBLE_EQ(obj.at("a").as_number("a"), 1.5);
  const auto& arr = obj.at("b").as_array("b");
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool("b[0]"));
  EXPECT_FALSE(arr[1].as_bool("b[1]"));
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_EQ(obj.at("s").as_string("s"), "hi\nthere");
  EXPECT_EQ(obj.at("n").as_int("n"), -3);
}

TEST(Json, RejectsMalformedDocuments) {
  // Truncated object.
  EXPECT_THROW(JsonValue::parse(R"({"a": 1)"), std::invalid_argument);
  // Trailing comma.
  EXPECT_THROW(JsonValue::parse(R"({"a": 1,})"), std::invalid_argument);
  // Bare identifier.
  EXPECT_THROW(JsonValue::parse("nope"), std::invalid_argument);
  // Trailing content after the document.
  EXPECT_THROW(JsonValue::parse(R"({"a": 1} extra)"), std::invalid_argument);
  // Duplicate keys.
  EXPECT_THROW(JsonValue::parse(R"({"a": 1, "a": 2})"),
               std::invalid_argument);
  // Unterminated string.
  EXPECT_THROW(JsonValue::parse(R"({"a": "x)"), std::invalid_argument);
  // Comments are not JSON.
  EXPECT_THROW(JsonValue::parse("// hi\n{}"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse(""), std::invalid_argument);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  oops\n}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("json:3:"), std::string::npos)
        << e.what();
  }
}

// --- scenario parsing ------------------------------------------------------

/// Minimal valid scenario; `extra` is spliced before the closing brace.
std::string scenario_text(const std::string& extra = "") {
  std::string s = R"({
    "name": "t", "seed": 5, "monitors": 2, "ticks": 400,
    "task": {"threshold": 1.5, "error_allowance": 0.02,
             "max_interval": 10, "updating_period": 100})";
  if (!extra.empty()) s += ",\n" + extra;
  s += "\n}";
  return s;
}

TEST(Scenario, ParsesMinimalDocument) {
  const Scenario s = Scenario::from_json_text(scenario_text());
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.seed, 5u);
  EXPECT_EQ(s.monitors, 2u);
  EXPECT_EQ(s.ticks, 400);
  EXPECT_DOUBLE_EQ(s.threshold, 1.5);
  EXPECT_LT(s.threshold_selectivity, 0.0);
}

TEST(Scenario, RejectsMalformedJson) {
  EXPECT_THROW(Scenario::from_json_text("{"), std::invalid_argument);
  EXPECT_THROW(Scenario::from_json_text("[]"), std::invalid_argument);
}

TEST(Scenario, RejectsUnknownKeysAndMissingFields) {
  EXPECT_THROW(Scenario::from_json_text(scenario_text(R"("typo_knob": 1)")),
               std::invalid_argument);
  // Missing task.
  EXPECT_THROW(Scenario::from_json_text(
                   R"({"name": "x", "ticks": 100, "monitors": 1})"),
               std::invalid_argument);
  // Both threshold forms at once.
  EXPECT_THROW(
      Scenario::from_json_text(
          R"({"name": "x", "ticks": 100, "monitors": 1,
              "task": {"threshold": 1, "threshold_selectivity": 5}})"),
      std::invalid_argument);
}

TEST(Scenario, RejectsUnknownFaultProfile) {
  try {
    Scenario::from_json_text(scenario_text(
        R"("faults": [{"profile": "wobbly-cable", "start": 0, "end": 100}])"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wobbly-cable"), std::string::npos) << what;
    // The error lists the valid profile names.
    EXPECT_NE(what.find("flaky-link"), std::string::npos) << what;
  }
}

TEST(Scenario, RejectsOverlappingFaultWindows) {
  // Same profile overlapping on the same monitors — the FaultPlan overlap
  // rule the simulator enforces.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("faults": [
                     {"profile": "flaky-link", "start": 0, "end": 200},
                     {"profile": "flaky-link", "start": 100, "end": 300}])")),
               std::invalid_argument);
  // Disjoint windows of one profile are fine.
  EXPECT_NO_THROW(Scenario::from_json_text(scenario_text(
      R"("faults": [
        {"profile": "flaky-link", "start": 0, "end": 100},
        {"profile": "flaky-link", "start": 200, "end": 300}])")));
  // Overlap of *different* profiles is allowed (they compose).
  EXPECT_NO_THROW(Scenario::from_json_text(scenario_text(
      R"("faults": [
        {"profile": "flaky-link", "start": 0, "end": 200},
        {"profile": "slow-drip", "start": 100, "end": 300}])")));
  // Same profile, disjoint monitor sets: no overlap either.
  EXPECT_NO_THROW(Scenario::from_json_text(scenario_text(
      R"("faults": [
        {"profile": "partition", "start": 0, "end": 200, "monitors": [0]},
        {"profile": "partition", "start": 100, "end": 300, "monitors": [1]}])")));
}

TEST(Scenario, RejectsOutOfRangeWindowsAndPhases) {
  // Fault window past the run end.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("faults": [{"profile": "partition",
                                  "start": 300, "end": 500}])")),
               std::invalid_argument);
  // Inverted window.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("faults": [{"profile": "partition",
                                  "start": 200, "end": 100}])")),
               std::invalid_argument);
  // Monitor index out of range.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("faults": [{"profile": "partition", "start": 0,
                                  "end": 100, "monitors": [7]}])")),
               std::invalid_argument);
  // Phases with a gap.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("phases": [{"name": "a", "start": 0, "end": 100},
                                 {"name": "b", "start": 150, "end": 400}])")),
               std::invalid_argument);
  // Phases not covering the run.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("phases": [{"name": "a", "start": 0, "end": 100}])")),
               std::invalid_argument);
  // Phase past the end.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("phases": [{"name": "a", "start": 0, "end": 500}])")),
               std::invalid_argument);
  // Valid tiling passes.
  EXPECT_NO_THROW(Scenario::from_json_text(scenario_text(
      R"("phases": [{"name": "a", "start": 0, "end": 100},
                    {"name": "b", "start": 100, "end": 400}])")));
}

TEST(Scenario, RejectsBadChurn) {
  // Task id 0 is the reserved boot task.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("churn": {"events": [
                     {"op": "add", "tick": 10, "task": 0}]})")),
               std::invalid_argument);
  // Explicit id colliding with the random id range.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("churn": {
                     "events": [{"op": "add", "tick": 10, "task": 101}],
                     "random": {"arrivals": 4, "first_task": 100}})")),
               std::invalid_argument);
  // Unknown op.
  EXPECT_THROW(Scenario::from_json_text(scenario_text(
                   R"("churn": {"events": [
                     {"op": "explode", "tick": 10, "task": 3}]})")),
               std::invalid_argument);
}

TEST(Scenario, KnownProfilesAreExposed) {
  const auto names = fault_profile_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto name : names) {
    EXPECT_NE(find_fault_profile(name), nullptr);
  }
  EXPECT_EQ(find_fault_profile("no-such-profile"), nullptr);
}

// --- deterministic builders ------------------------------------------------

Scenario small_scenario() {
  Scenario s;
  s.name = "unit";
  s.seed = 9;
  s.monitors = 3;
  s.ticks = 600;
  s.threshold_selectivity = 6.0;
  s.task.error_allowance = 0.02;
  s.task.max_interval = 10;
  s.task.updating_period = 150;
  s.base.sigma = 0.05;
  return s;
}

TEST(Builders, SeriesAreSeedStableAndMonitorIndependent) {
  const Scenario s = small_scenario();
  const auto a = build_monitor_series(s);
  const auto b = build_monitor_series(s);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t m = 0; m < a.size(); ++m) {
    ASSERT_EQ(a[m].size(), b[m].size());
    for (std::size_t i = 0; i < a[m].size(); ++i)
      ASSERT_DOUBLE_EQ(a[m][i], b[m][i]) << "monitor " << m << " tick " << i;
  }

  // Adding monitors never perturbs the series of existing ones.
  Scenario wider = s;
  wider.monitors = 5;
  const auto w = build_monitor_series(wider);
  ASSERT_EQ(w.size(), 5u);
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (std::size_t i = 0; i < a[m].size(); ++i)
      ASSERT_DOUBLE_EQ(a[m][i], w[m][i]) << "monitor " << m << " tick " << i;
  }
}

TEST(Builders, SpikeLayerIsCorrelatedAcrossTargets) {
  Scenario s = small_scenario();
  WorkloadLayer spike;
  spike.kind = WorkloadLayer::Kind::kSpike;
  spike.at = 200;
  spike.len = 20;
  spike.value = 5.0;
  spike.monitors = {0, 2};
  s.layers.push_back(spike);

  const auto base = build_monitor_series(small_scenario());
  const auto spiked = build_monitor_series(s);
  for (Tick t = 200; t < 220; ++t) {
    const auto i = static_cast<std::size_t>(t);
    EXPECT_DOUBLE_EQ(spiked[0][i], base[0][i] + 5.0);
    EXPECT_DOUBLE_EQ(spiked[1][i], base[1][i]);  // untargeted
    EXPECT_DOUBLE_EQ(spiked[2][i], base[2][i] + 5.0);
  }
}

TEST(Builders, ScaledRescalesProportionally) {
  Scenario s = small_scenario();
  s.faults.push_back({"flaky-link", 100, 300, {}});
  s.phases.push_back({"a", 0, 300, -1.0});
  s.phases.push_back({"b", 300, 600, -1.0});
  const Scenario q = s.scaled(200);
  EXPECT_EQ(q.ticks, 200);
  ASSERT_EQ(q.faults.size(), 1u);
  EXPECT_EQ(q.faults[0].start, 33);
  EXPECT_EQ(q.faults[0].end, 100);
  ASSERT_EQ(q.phases.size(), 2u);
  EXPECT_EQ(q.phases[0].start, 0);
  EXPECT_EQ(q.phases[1].end, 200);
  EXPECT_NO_THROW(q.validate());
  // No-op when already short enough.
  EXPECT_EQ(s.scaled(10000).ticks, 600);
}

// --- soak runner -----------------------------------------------------------

TEST(Soak, SimReplayIsByteIdentical) {
  Scenario s = small_scenario();
  s.faults.push_back({"flaky-link", 150, 350, {}});
  s.churn.random_arrivals = 2;
  s.churn.hold_min = 100;
  s.churn.hold_max = 250;
  s.phases.push_back({"first", 0, 300, 0.5});
  s.phases.push_back({"second", 300, 600, 0.5});

  SoakOptions options;  // sim, no artifacts
  const SoakReport a = run_scenario_sim(s, options);
  const SoakReport b = run_scenario_sim(s, options);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_FALSE(a.epochs.empty());
  ASSERT_EQ(a.phases.size(), 2u);
  EXPECT_GT(a.phases[0].ops, 0);
  EXPECT_GT(a.phases[0].lost_reports + a.phases[0].global_polls, 0);

  // A different seed produces a different report (the workload, faults and
  // churn all derive from it).
  Scenario other = s;
  other.seed = 10;
  const SoakReport c = run_scenario_sim(other, options);
  EXPECT_NE(a.to_json(), c.to_json());
}

TEST(Soak, InvariantTripIsDetected) {
  // A full blackout with zero tolerance must trip error_budget in the
  // blackout phase — the harness proves it detects violations, not just
  // that green runs stay green.
  Scenario s = small_scenario();
  s.name = "trip";
  WorkloadLayer spike;  // guarantees an episode inside the blackout
  spike.kind = WorkloadLayer::Kind::kSpike;
  spike.at = 250;
  spike.len = 40;
  spike.value = 5.0;
  s.layers.push_back(spike);
  s.faults.push_back({"partition", 150, 450, {}});
  s.phases.push_back({"healthy", 0, 150, 0.5});
  s.phases.push_back({"blackout", 150, 450, 0.0});
  s.phases.push_back({"aftermath", 450, 600, 0.5});

  const SoakReport report = run_scenario_sim(s, {});
  EXPECT_FALSE(report.passed());
  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_TRUE(report.phases[0].passed()) << report.to_json();
  EXPECT_FALSE(report.phases[1].passed());
  bool budget_failed = false;
  for (const auto& check : report.phases[1].checks) {
    if (check.name == "error_budget" && !check.pass) budget_failed = true;
  }
  EXPECT_TRUE(budget_failed) << report.to_json();
  // The outage is visible in the phase counters too.
  EXPECT_GT(report.phases[1].outage_monitor_ticks, 0);
}

TEST(Soak, SimRunsCommittedStyleScenarioWithChurn) {
  Scenario s = small_scenario();
  s.churn.events.push_back(
      {ChurnSpec::Event::Op::kAdd, 100, 7, 1.2});
  s.churn.events.push_back(
      {ChurnSpec::Event::Op::kUpdate, 250, 7, 1.1});
  s.churn.events.push_back({ChurnSpec::Event::Op::kRemove, 400, 7, 1.0});

  const SoakReport report = run_scenario_sim(s, {});
  // boot add + add + update(depart+arrive) + remove = 5 epochs.
  EXPECT_EQ(report.epochs.size(), 5u);
  for (std::size_t i = 1; i < report.epochs.size(); ++i)
    EXPECT_LT(report.epochs[i - 1], report.epochs[i]);
  for (const auto& check : report.global_checks) {
    EXPECT_TRUE(check.pass) << check.name << ": " << check.detail;
  }
}

TEST(Soak, QuickModeScalesBeforeRunning) {
  Scenario s = small_scenario();
  s.phases.push_back({"all", 0, 600, -1.0});
  SoakOptions options;
  options.quick = true;
  options.quick_ticks = 200;
  const SoakReport report = run_scenario_sim(s, options);
  EXPECT_EQ(report.ticks, 200);
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].end, 200);
}

TEST(Soak, NetSmokeThroughChaosProxy) {
  // End-to-end wire run: coordinator + monitors + chaos proxy, a fault
  // window and a churn RPC, judged by the net-mode invariants.
  Scenario s = small_scenario();
  s.name = "net-smoke";
  s.ticks = 400;
  s.monitors = 2;
  s.tick_micros = 200;
  s.faults.push_back({"flaky-link", 100, 300, {}});
  s.churn.events.push_back({ChurnSpec::Event::Op::kAdd, 120, 7, 1.2});
  s.churn.events.push_back({ChurnSpec::Event::Op::kRemove, 280, 7, 1.0});

  const SoakReport report = run_scenario_net(s, {});
  EXPECT_EQ(report.mode, "net");
  // Both churn RPCs answered with monotone epochs.
  EXPECT_EQ(report.epochs.size(), 2u);
  EXPECT_TRUE(report.passed()) << report.to_json();
  bool saw_stuck_check = false;
  for (const auto& check : report.global_checks) {
    if (check.name == "no_stuck_monitors") saw_stuck_check = true;
  }
  EXPECT_TRUE(saw_stuck_check);
}

}  // namespace
}  // namespace volley::scenario
