// Tests for the parallel experiment engine: the thread pool (common/
// thread_pool.h) and the sweep layer (sim/sweep.h), including the sweep's
// determinism guarantee — parallel results byte-identical to the serial
// loop — and the run-scoped metrics contract it depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "sim/runner.h"
#include "sim/sweep.h"

namespace volley {
namespace {

TimeSeries noisy_series(Tick ticks, std::uint64_t seed, double spike_at = -1) {
  Rng rng(seed);
  TimeSeries s(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    s[static_cast<std::size_t>(t)] = rng.normal(0.0, 0.1);
  }
  if (spike_at >= 0) s[static_cast<std::size_t>(spike_at)] = 10.0;
  return s;
}

TaskSpec small_spec(double err) {
  TaskSpec spec;
  spec.global_threshold = 5.0;
  spec.error_allowance = err;
  spec.max_interval = 16;
  spec.patience = 5;
  spec.updating_period = 200;
  return spec;
}

// Full-field equality: the sweep promises byte-identical results, so
// doubles are compared exactly, not within a tolerance.
void expect_same_result(const RunResult& a, const RunResult& b,
                        std::size_t index) {
  EXPECT_EQ(a.ticks, b.ticks) << "run " << index;
  EXPECT_EQ(a.monitors, b.monitors) << "run " << index;
  EXPECT_EQ(a.scheduled_ops, b.scheduled_ops) << "run " << index;
  EXPECT_EQ(a.forced_ops, b.forced_ops) << "run " << index;
  EXPECT_EQ(a.total_cost, b.total_cost) << "run " << index;
  EXPECT_EQ(a.true_alert_ticks, b.true_alert_ticks) << "run " << index;
  EXPECT_EQ(a.detected_alert_ticks, b.detected_alert_ticks)
      << "run " << index;
  EXPECT_EQ(a.true_episodes, b.true_episodes) << "run " << index;
  EXPECT_EQ(a.detected_episodes, b.detected_episodes) << "run " << index;
  EXPECT_EQ(a.local_violations, b.local_violations) << "run " << index;
  EXPECT_EQ(a.global_polls, b.global_polls) << "run " << index;
  EXPECT_EQ(a.reallocations, b.reallocations) << "run " << index;
  EXPECT_EQ(a.op_ticks, b.op_ticks) << "run " << index;
  EXPECT_EQ(a.interval_trajectory, b.interval_trajectory) << "run " << index;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << "run " << index;
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 17)
                                     throw std::invalid_argument("bad index");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvironment) {
  ::setenv("VOLLEY_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ::setenv("VOLLEY_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::unsetenv("VOLLEY_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

// ---------------------------------------------------------------------------
// sim::sweep

TEST(Sweep, ResultsAreInputOrdered) {
  sim::SweepOptions options;
  options.threads = 4;
  const auto results = sim::sweep(
      64,
      [](std::size_t i) {
        RunResult r;
        r.ticks = static_cast<Tick>(i);
        return r;
      },
      options);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].ticks, static_cast<Tick>(i));
  }
}

TEST(Sweep, ParallelMatchesSerialLoopByteForByte) {
  // A small grid of real runs: same series under several allowances, plus
  // distinct series — the shape of a figure bench, scaled down.
  std::vector<TimeSeries> series;
  series.push_back(noisy_series(600, 11, 200));
  series.push_back(noisy_series(600, 12, 350));
  series.push_back(noisy_series(600, 13));
  const double errs[] = {0.005, 0.02, 0.08};

  std::vector<sim::SweepCell> cells;
  for (double err : errs) {
    for (const auto& s : series) {
      sim::SweepCell cell;
      cell.spec = small_spec(err);
      cell.series = &s;
      cells.push_back(cell);
    }
  }

  // The reference: the plain serial loop the sweep documents itself
  // against, under the same per-run registry scoping runs always get.
  std::vector<RunResult> reference;
  for (const auto& cell : cells) {
    reference.push_back(run_volley_single(cell.spec, *cell.series));
  }

  for (std::size_t threads : {1u, 2u, 4u}) {
    sim::SweepOptions options;
    options.threads = threads;
    const auto results = sim::sweep(cells, options);
    ASSERT_EQ(results.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < results.size(); ++i) {
      expect_same_result(reference[i], results[i], i);
    }
  }
}

TEST(Sweep, PrecomputedTruthMatchesRecomputed) {
  const TimeSeries s = noisy_series(600, 21, 300);
  const TaskSpec spec = small_spec(0.02);
  const GroundTruth truth =
      GroundTruth::from_series(s, spec.global_threshold);

  sim::SweepCell with_truth;
  with_truth.spec = spec;
  with_truth.series = &s;
  with_truth.truth = &truth;
  sim::SweepCell without_truth;
  without_truth.spec = spec;
  without_truth.series = &s;

  const sim::SweepCell cells[] = {with_truth, without_truth};
  const auto results = sim::sweep(cells, {});
  ASSERT_EQ(results.size(), 2u);
  expect_same_result(results[0], results[1], 0);
}

TEST(Sweep, MergesJobCountersIntoCallerRegistry) {
  obs::MetricsRegistry caller;
  obs::ScopedMetricsRegistry scope(caller);
  sim::SweepOptions options;
  options.threads = 4;
  sim::sweep(
      32,
      [](std::size_t) {
        obs::metrics().counter("test_sweep_jobs_total").inc();
        return RunResult{};
      },
      options);
  // Every job ran under a private registry; all 32 increments must have
  // been folded back into the caller's scope.
  EXPECT_EQ(caller.counter("test_sweep_jobs_total").value(), 32);
}

TEST(Sweep, CellWithoutSeriesThrows) {
  const sim::SweepCell cells[] = {sim::SweepCell{}};
  EXPECT_THROW(sim::sweep(cells, {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Run-scoped metrics (the regression that motivated scoping: RunResult
// snapshots used to read the cumulative global registry).

TEST(RunScopedMetrics, BackToBackRunsReportNonCumulativeCounts) {
  const TimeSeries s = noisy_series(800, 31, 400);
  const TaskSpec spec = small_spec(0.02);
  const auto first = run_volley_single(spec, s);
  const auto second = run_volley_single(spec, s);
  ASSERT_FALSE(first.metrics_json.empty());
  // Identical runs must report identical snapshots; before run scoping the
  // second run's snapshot carried both runs' counts.
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(RunScopedMetrics, RunCountersStillReachEnclosingRegistry) {
  obs::MetricsRegistry caller;
  std::int64_t per_run = 0;
  {
    obs::ScopedMetricsRegistry scope(caller);
    const TimeSeries s = noisy_series(800, 32, 400);
    run_volley_single(small_spec(0.02), s);
    per_run =
        caller.counter("volley_sampler_observations_total").value();
    run_volley_single(small_spec(0.02), s);
  }
  EXPECT_GT(per_run, 0);
  // Two identical runs: the enclosing registry accumulates both.
  EXPECT_EQ(caller.counter("volley_sampler_observations_total").value(),
            2 * per_run);
}

}  // namespace
}  // namespace volley
