// Identity tests for the β̄ likelihood kernel (DESIGN.md §11): every fast
// path — zero-β̄ certificate, incremental prefix memo, blocked/SIMD loop,
// SoA batch, coordinator batch drain — must return the double that the
// baseline `beta_bound_with(..., chebyshev_step_bound)` loop returns,
// compared *bitwise*, across a property sweep that covers σ = 0, k ≤ 0,
// cold start, saturation early-exits, and the AIMD access pattern. Plus the
// VOLLEY_SCALAR_BETA escape-hatch regression: with the hatch on, the legacy
// per-monitor evaluation is restored and a whole run is byte-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/coordinator.h"
#include "core/likelihood.h"
#include "core/likelihood_kernel.h"
#include "core/threshold_split.h"
#include "sim/runner.h"

namespace volley {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// Bitwise equality — EXPECT_DOUBLE_EQ would pass 0.0 == -0.0 and fail on
/// NaN == NaN; the kernel's contract is stricter than either.
#define EXPECT_BITEQ(a, b) EXPECT_EQ(bits(a), bits(b))
#define ASSERT_BITEQ(a, b) ASSERT_EQ(bits(a), bits(b))

double scalar_reference(double v, double t, const DeltaStats& s, Tick i) {
  return beta_bound_with(v, t, s, i, chebyshev_step_bound);
}

/// RAII guard for the runtime escape hatch; restores the prior state.
class ScalarBetaGuard {
 public:
  explicit ScalarBetaGuard(bool scalar) : prior_(scalar_beta()) {
    set_scalar_beta(scalar);
  }
  ~ScalarBetaGuard() { set_scalar_beta(prior_); }
  ScalarBetaGuard(const ScalarBetaGuard&) = delete;
  ScalarBetaGuard& operator=(const ScalarBetaGuard&) = delete;

 private:
  bool prior_;
};

// --- beta_bound_chebyshev vs the baseline loop ------------------------

TEST(KernelIdentity, GridSweepIsBitwiseIdentical) {
  // Deliberately spans every regime: far-below-threshold (certificate),
  // near-threshold (full loop), mean drift crossing T (k <= 0, survive
  // hits 0), negative mean (margin grows with i), sigma = 0 (deterministic
  // drift), and tiny sigma (huge k without the drift ever crossing).
  const double values[] = {0.0, 1.0, 9.5, 10.0, 11.0, -3.0};
  const double thresholds[] = {10.0, 1e6, 0.5};
  const double means[] = {0.0, 0.1, -0.2, 5.0, 1e-9};
  const double stddevs[] = {0.0, 1e-12, 0.05, 1.0, 50.0};
  const Tick intervals[] = {1, 2, 3, 7, 15, 16, 17, 40, 128, 1000};

  for (double v : values)
    for (double t : thresholds)
      for (double mu : means)
        for (double sigma : stddevs)
          for (Tick i : intervals) {
            const DeltaStats s{mu, sigma};
            ASSERT_BITEQ(beta_bound_chebyshev(v, t, s, i),
                         scalar_reference(v, t, s, i))
                << "v=" << v << " T=" << t << " mu=" << mu
                << " sigma=" << sigma << " I=" << i;
          }
}

TEST(KernelIdentity, RandomSweepIsBitwiseIdentical) {
  Rng rng(2024);
  for (int trial = 0; trial < 5000; ++trial) {
    const double v = rng.normal(0.0, 100.0);
    const double t = v + rng.normal(5.0, 50.0);  // margins of both signs
    const DeltaStats s{rng.normal(0.0, 2.0),
                       std::fabs(rng.normal(0.0, 3.0))};
    const auto i = static_cast<Tick>(1 + (trial % 200));
    ASSERT_BITEQ(beta_bound_chebyshev(v, t, s, i),
                 scalar_reference(v, t, s, i))
        << "v=" << v << " T=" << t << " mu=" << s.mean
        << " sigma=" << s.stddev << " I=" << i;
  }
}

TEST(KernelIdentity, CertificateRegimeIsExactZero) {
  // A quiet metric far below its threshold: every survival factor rounds
  // to exactly 1.0, so the certificate may answer 0.0 in O(1) — and the
  // baseline loop must agree it is exactly +0.0, not merely tiny. The
  // regime needs k_I = (T - v - I*mu)/(I*sigma) >= 2^28 at the far
  // endpoint: T = 1e12 over I = 128 steps of sigma = 0.5 gives k ~ 1.6e10.
  const DeltaStats s{0.001, 0.5};
  const double beta = beta_bound_chebyshev(1.0, 1e12, s, 128);
  EXPECT_BITEQ(beta, 0.0);
  EXPECT_BITEQ(beta, scalar_reference(1.0, 1e12, s, 128));
}

TEST(KernelIdentity, SaturationRegimesMatch) {
  // survive hits exactly 0 (a k <= 0 step)...
  const DeltaStats drift{5.0, 1.0};
  ASSERT_BITEQ(beta_bound_chebyshev(8.0, 10.0, drift, 4),
               scalar_reference(8.0, 10.0, drift, 4));
  EXPECT_BITEQ(beta_bound_chebyshev(8.0, 10.0, drift, 4), 1.0);
  // ...and the 1 - survive == 1.0 early-exit (tiny positive k: each factor
  // ~k^2, the product underflows the 2^-53 threshold within a few steps).
  const DeltaStats noisy{0.0, 1e6};
  ASSERT_BITEQ(beta_bound_chebyshev(0.0, 1.0, noisy, 64),
               scalar_reference(0.0, 1.0, noisy, 64));
  EXPECT_BITEQ(beta_bound_chebyshev(0.0, 1.0, noisy, 64), 1.0);
}

TEST(KernelIdentity, RejectsNonPositiveInterval) {
  const DeltaStats s{0.0, 1.0};
  EXPECT_THROW(beta_bound_chebyshev(0.0, 1.0, s, 0), std::invalid_argument);
}

// --- the incremental memo ---------------------------------------------

TEST(KernelCache, AimdAccessPatternStaysIdentical) {
  // The sampler's real access pattern: same key, interval grows by one,
  // occasionally resets to 1, occasionally re-asks the same interval.
  const DeltaStats s{0.01, 0.8};
  const double v = 2.0, t = 60.0;
  BetaBoundCache cache;
  for (int round = 0; round < 3; ++round) {
    for (Tick i = 1; i <= 128; ++i) {
      ASSERT_BITEQ(beta_bound_chebyshev(v, t, s, i, &cache),
                   scalar_reference(v, t, s, i))
          << "round=" << round << " I=" << i;
      // Same-interval re-evaluation (a pure memo hit) must also agree.
      ASSERT_BITEQ(beta_bound_chebyshev(v, t, s, i, &cache),
                   scalar_reference(v, t, s, i));
    }
  }
}

TEST(KernelCache, ShrinkingIntervalRecomputes) {
  const DeltaStats s{0.05, 1.2};
  BetaBoundCache cache;
  for (Tick i : {Tick{100}, Tick{3}, Tick{40}, Tick{1}, Tick{99}}) {
    ASSERT_BITEQ(beta_bound_chebyshev(4.0, 80.0, s, i, &cache),
                 scalar_reference(4.0, 80.0, s, i))
        << "I=" << i;
  }
}

TEST(KernelCache, KeyChangeInvalidates) {
  BetaBoundCache cache;
  const DeltaStats a{0.1, 1.0}, b{0.1, 1.5};
  ASSERT_BITEQ(beta_bound_chebyshev(1.0, 30.0, a, 20, &cache),
               scalar_reference(1.0, 30.0, a, 20));
  // stddev changed under the same pointer: stale reuse would be visible.
  ASSERT_BITEQ(beta_bound_chebyshev(1.0, 30.0, b, 21, &cache),
               scalar_reference(1.0, 30.0, b, 21));
  // value changed:
  ASSERT_BITEQ(beta_bound_chebyshev(2.0, 30.0, b, 22, &cache),
               scalar_reference(2.0, 30.0, b, 22));
  // threshold changed:
  ASSERT_BITEQ(beta_bound_chebyshev(2.0, 29.0, b, 23, &cache),
               scalar_reference(2.0, 29.0, b, 23));
}

TEST(KernelCache, SaturatedThenShorterInterval) {
  // Saturate the memo at a long interval, then ask for a shorter one whose
  // true result is NOT saturated: the memo must not round-trip the 1.0.
  const DeltaStats s{0.4, 0.8};
  BetaBoundCache cache;
  const double v = 0.0, t = 20.0;
  ASSERT_BITEQ(beta_bound_chebyshev(v, t, s, 200, &cache),
               scalar_reference(v, t, s, 200));
  for (Tick i = 1; i <= 30; ++i) {
    ASSERT_BITEQ(beta_bound_chebyshev(v, t, s, i, &cache),
                 scalar_reference(v, t, s, i))
        << "I=" << i;
  }
}

TEST(KernelCache, CertificateExtensionKeepsResult) {
  // Quiet regime: first evaluation certifies 0.0, growing I extends via
  // the range certificate without touching the stored product.
  const DeltaStats s{0.0, 0.1};
  BetaBoundCache cache;
  for (Tick i = 1; i <= 128; ++i) {
    ASSERT_BITEQ(beta_bound_chebyshev(0.0, 1e11, s, i, &cache), 0.0);
  }
}

// --- estimator / batch layers -----------------------------------------

/// Feeds both estimators the same walk; returns them warmed up.
void feed(ViolationLikelihoodEstimator& est, std::uint64_t seed, int n) {
  Rng rng(seed);
  double v = 0.0;
  for (int i = 0; i < n; ++i) {
    v += rng.normal(0.05, 0.4);
    est.observe(v, 1);
  }
}

TEST(KernelEstimator, BetaBoundMatchesScalarFlag) {
  // The estimator's kernel-backed beta_bound must equal the same call with
  // the escape hatch on (which routes through the verbatim legacy loop).
  ViolationLikelihoodEstimator kernel_est, scalar_est;
  feed(kernel_est, 31, 300);
  feed(scalar_est, 31, 300);
  for (Tick i : {Tick{1}, Tick{5}, Tick{40}, Tick{128}}) {
    for (double t : {5.0, 50.0, 1e6}) {
      double with_kernel = 0.0, with_scalar = 0.0;
      {
        ScalarBetaGuard guard(false);
        with_kernel = kernel_est.beta_bound(t, i);
      }
      {
        ScalarBetaGuard guard(true);
        with_scalar = scalar_est.beta_bound(t, i);
      }
      ASSERT_BITEQ(with_kernel, with_scalar) << "T=" << t << " I=" << i;
    }
  }
}

TEST(KernelEstimator, GaussianPathUnaffected) {
  ViolationLikelihoodEstimator::Options options;
  options.bound = ViolationLikelihoodEstimator::Bound::kGaussian;
  ViolationLikelihoodEstimator est(options);
  feed(est, 47, 200);
  const auto stats = est.delta_stats();
  ASSERT_TRUE(stats.has_value());
  const double direct = beta_bound_with(*est.last_value(), 25.0, *stats, 12,
                                        gaussian_step_bound);
  EXPECT_BITEQ(est.beta_bound(25.0, 12), direct);
}

TEST(KernelBatch, LanesMatchPerEstimatorResults) {
  ViolationLikelihoodEstimator::Options gauss_opt;
  gauss_opt.bound = ViolationLikelihoodEstimator::Bound::kGaussian;

  std::vector<std::unique_ptr<ViolationLikelihoodEstimator>> ests;
  for (int m = 0; m < 12; ++m) {
    ests.push_back(std::make_unique<ViolationLikelihoodEstimator>());
    feed(*ests.back(), 100 + static_cast<std::uint64_t>(m), 50 + 20 * m);
  }
  ests.push_back(std::make_unique<ViolationLikelihoodEstimator>());  // cold
  ests.push_back(std::make_unique<ViolationLikelihoodEstimator>(gauss_opt));
  feed(*ests.back(), 999, 120);

  BetaBatch batch;
  const double threshold = 40.0;
  for (std::size_t m = 0; m < ests.size(); ++m) {
    const auto interval = static_cast<Tick>(1 + 11 * m % 64);
    ests[m]->push_lane(threshold, interval, batch);
  }
  ASSERT_EQ(batch.size(), ests.size());
  beta_bound_batch(batch);
  for (std::size_t m = 0; m < ests.size(); ++m) {
    const auto interval = static_cast<Tick>(1 + 11 * m % 64);
    ASSERT_BITEQ(batch.beta[m], ests[m]->beta_bound(threshold, interval))
        << "lane " << m;
  }
  // The cold lane is the conservative 1.0 by construction.
  EXPECT_BITEQ(batch.beta[12], 1.0);

  // clear() keeps capacity: the coordinator's steady state re-fills the
  // same batch every sample tick without allocating.
  const auto cap = batch.value.capacity();
  batch.clear();
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.value.capacity(), cap);
}

TEST(KernelBatch, ScalarFlagRoutesLanesThroughLegacyLoop) {
  ViolationLikelihoodEstimator est;
  feed(est, 71, 250);
  const auto stats = est.delta_stats();
  ASSERT_TRUE(stats.has_value());

  BetaBatch batch;
  est.push_lane(30.0, 24, batch);
  {
    ScalarBetaGuard guard(true);
    beta_bound_batch(batch);
  }
  EXPECT_BITEQ(batch.beta[0],
               scalar_reference(*est.last_value(), 30.0, *stats, 24));
}

// --- escape-hatch flag -------------------------------------------------

TEST(ScalarBetaFlag, SetterRoundTrips) {
  const bool prior = scalar_beta();
  set_scalar_beta(true);
  EXPECT_TRUE(scalar_beta());
  set_scalar_beta(false);
  EXPECT_FALSE(scalar_beta());
  set_scalar_beta(prior);
}

// --- whole-run regression: batch drain vs legacy per-monitor loop ------

std::vector<TimeSeries> walk_series(int monitors, Tick ticks,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimeSeries> series;
  for (int m = 0; m < monitors; ++m) {
    TimeSeries s(static_cast<std::size_t>(ticks));
    double x = 0.0;
    for (Tick t = 0; t < ticks; ++t) {
      x = 0.85 * x + rng.normal(0.0, 0.4);
      s[static_cast<std::size_t>(t)] = x;
    }
    series.push_back(std::move(s));
  }
  return series;
}

TEST(ScalarBetaRegression, WholeRunIsByteIdenticalEitherWay) {
  // 16 monitors >= the coordinator's batch threshold: tick 0 (and every
  // poll rebuild) drains through the batched kernel path, later sparse
  // ticks through the per-monitor loop. With the hatch on, every
  // evaluation instead takes the verbatim legacy loop. The two runs must
  // agree byte for byte — including the metrics_json snapshot, which
  // covers every counter and histogram either path touches.
  const Tick ticks = 4000;
  const auto series = walk_series(16, ticks, 321);
  TaskSpec spec;
  spec.global_threshold =
      TimeSeries::sum(series).threshold_for_selectivity(2.0);
  spec.error_allowance = 0.02;
  spec.max_interval = 12;
  spec.updating_period = 500;
  const auto locals = split_threshold(spec.global_threshold, series.size());

  RunOptions options;
  options.record_ops = true;
  options.record_intervals = true;
  RunResult legacy, kernel;
  {
    ScalarBetaGuard guard(true);
    legacy = run_volley(spec, series, locals, options);
  }
  {
    ScalarBetaGuard guard(false);
    kernel = run_volley(spec, series, locals, options);
  }
  ASSERT_GT(legacy.global_polls, 0);
  EXPECT_EQ(legacy.scheduled_ops, kernel.scheduled_ops);
  EXPECT_EQ(legacy.forced_ops, kernel.forced_ops);
  EXPECT_EQ(legacy.total_cost, kernel.total_cost);
  EXPECT_EQ(legacy.local_violations, kernel.local_violations);
  EXPECT_EQ(legacy.global_polls, kernel.global_polls);
  EXPECT_EQ(legacy.reallocations, kernel.reallocations);
  EXPECT_EQ(legacy.detected_alert_ticks, kernel.detected_alert_ticks);
  EXPECT_EQ(legacy.op_ticks, kernel.op_ticks);
  EXPECT_EQ(legacy.interval_trajectory, kernel.interval_trajectory);
  EXPECT_EQ(legacy.metrics_json, kernel.metrics_json);
}

}  // namespace
}  // namespace volley
