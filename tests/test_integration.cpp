// Integration tests across modules: the paper's qualitative claims on
// realistic (generated) workloads, exercised end-to-end through trace
// generation -> task construction -> the experiment runner.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/cost_model.h"
#include "sim/runner.h"
#include "tasks/app_task.h"
#include "tasks/network_task.h"
#include "tasks/system_task.h"

namespace volley {
namespace {

NetworkWorkloadOptions small_network() {
  NetworkWorkloadOptions o;
  o.netflow.vms = 4;
  o.netflow.ticks = 2880;  // half a day at 15 s
  o.netflow.ticks_per_day = 5760;
  o.netflow.diurnal_phase = 1440;
  o.netflow.mean_flows_per_tick = 50.0;
  o.netflow.seed = 31;
  o.attack_prototype.peak_syn_rate = 3000.0;
  o.attacks_per_vm = 2;
  o.seed = 33;
  return o;
}

TEST(Integration, NetworkTaskSavesCostAndMeetsAccuracy) {
  NetworkWorkload workload(small_network());
  auto traffic = workload.generate_traffic();
  int episodes_total = 0;
  double ratio_sum = 0.0;
  const auto vms = traffic.size();
  for (auto& vm : traffic) {
    auto task = NetworkWorkload::make_task(std::move(vm), 1.0, 0.02);
    task.spec.max_interval = 20;
    task.spec.estimator.stats_window = 240;
    const auto r = run_volley_single(task.spec, task.traffic.rho);
    ratio_sum += r.sampling_ratio();
    EXPECT_LE(r.episode_miss_rate(), 0.25);  // err=2% of ticks; episodes
                                             // are harder, allow slack
    episodes_total += static_cast<int>(r.true_episodes);
  }
  // Attack counts are Poisson per VM, so a single VM may end up with a
  // benign-scale threshold and no savings; the fleet average must save.
  EXPECT_LT(ratio_sum / static_cast<double>(vms), 0.85);
  EXPECT_GT(episodes_total, 0);
}

TEST(Integration, SystemTaskRunsAcrossMetricFamilies) {
  SysMetricsOptions o;
  o.nodes = 1;
  o.ticks = 4000;
  o.ticks_per_day = 4000;
  o.seed = 35;
  SysMetricsGenerator gen(o);
  for (std::size_t metric : {0u, 12u, 30u, 46u, 58u}) {
    auto task = make_system_task(gen, 0, metric, 2.0, 0.02);
    EXPECT_DOUBLE_EQ(task.spec.id_seconds, 5.0);
    const auto r = run_volley_single(task.spec, task.series);
    EXPECT_GT(r.total_ops(), 0);
    EXPECT_LE(r.sampling_ratio(), 1.05)
        << SysMetricsGenerator::catalog()[metric].name;
  }
}

TEST(Integration, AppTaskExploitsOffPeakValleys) {
  HttpLogOptions o;
  o.objects = 2;
  o.ticks = 20000;
  o.ticks_per_day = 20000;
  o.diurnal_phase = 10000;
  o.diurnal_depth = 0.9;
  o.seed = 37;
  HttpLogGenerator gen(o);
  const auto traces = gen.generate();
  auto task = make_app_task(traces[0], 0, 1.0, 0.02);
  EXPECT_DOUBLE_EQ(task.spec.id_seconds, 1.0);
  task.spec.max_interval = 30;
  RunOptions options;
  options.record_ops = true;
  const auto r = run_volley_single(task.spec, task.series, options);
  EXPECT_LT(r.sampling_ratio(), 0.7);
  // Off-peak (first 10% of the trace) must be sampled far more sparsely
  // than the peak region.
  std::int64_t offpeak_ops = 0, peak_ops = 0;
  for (Tick t : r.op_ticks[0]) {
    if (t < 2000) ++offpeak_ops;
    if (t >= 9000 && t < 11000) ++peak_ops;
  }
  EXPECT_LT(offpeak_ops, peak_ops);
}

TEST(Integration, SelectivityMonotonicity) {
  // Smaller k (higher threshold, rarer alerts) must never cost more: the
  // Figure 5 series ordering.
  NetworkWorkload workload(small_network());
  auto traffic = workload.generate_traffic();
  auto& vm = traffic[0];
  double prev_ratio = 1e9;
  for (double k : {6.4, 1.6, 0.4}) {
    VmTraffic copy;
    copy.rho = vm.rho;
    copy.in_packets = vm.in_packets;
    auto task = NetworkWorkload::make_task(std::move(copy), k, 0.01);
    const auto r = run_volley_single(task.spec, task.traffic.rho);
    EXPECT_LE(r.sampling_ratio(), prev_ratio + 0.1) << "k=" << k;
    prev_ratio = r.sampling_ratio();
  }
}

TEST(Integration, Dom0UtilizationDropsWithAllowance) {
  // The Figure 6 mechanism, end to end: record op ticks for a host's VMs
  // under two error allowances and compare modeled Dom0 CPU.
  NetworkWorkload workload(small_network());
  auto traffic = workload.generate_traffic();
  Dom0CostModel model;

  auto run_host = [&](double err) {
    std::vector<std::vector<Tick>> op_ticks;
    std::vector<TimeSeries> packets;
    for (const auto& vm : traffic) {
      VmTraffic copy;
      copy.rho = vm.rho;
      copy.in_packets = vm.in_packets;
      auto task = NetworkWorkload::make_task(std::move(copy), 1.0, err);
      RunOptions options;
      options.record_ops = true;
      const auto r = run_volley_single(task.spec, task.traffic.rho, options);
      op_ticks.push_back(r.op_ticks[0]);
      packets.push_back(task.traffic.in_packets);
    }
    const auto util = model.host_utilization(
        traffic[0].rho.ticks(), op_ticks, packets);
    return util.mean();
  };

  const double tight = run_host(0.001);
  const double loose = run_host(0.05);
  EXPECT_LT(loose, tight);
  EXPECT_GT(tight, 0.0);
}

TEST(Integration, DistributedTaskOverGeneratedTraffic) {
  // A 4-VM distributed DDoS task. As in the paper (Section V-A), the
  // threshold is a percentile of the monitored values over the task's
  // lifetime — *including* attack episodes — so it sits at attack scale,
  // far above the benign rho noise; that separation is what lets the
  // adaptive sampler grow its interval during quiet stretches.
  auto opts = small_network();
  opts.attack_prototype.peak_syn_rate = 4000.0;
  opts.attacks_per_vm = 1;
  NetworkWorkload workload(opts);
  auto traffic = workload.generate_traffic();

  std::vector<TimeSeries> series;
  for (auto& vm : traffic) series.push_back(vm.rho);
  const TimeSeries aggregate = TimeSeries::sum(series);
  const double global_threshold = aggregate.threshold_for_selectivity(0.5);

  TaskSpec spec;
  spec.global_threshold = global_threshold;
  spec.error_allowance = 0.02;
  spec.max_interval = 16;
  spec.updating_period = 500;
  // Local thresholds proportional to each VM's own traffic tail: an even
  // split would give the Zipf-rank-1 VM no margin at all (its benign rho
  // noise scales with its volume) and degenerate to per-tick polling.
  std::vector<double> weights;
  for (const auto& s : series) {
    weights.push_back(std::max(s.threshold_for_selectivity(0.5), 1.0));
  }
  const auto locals =
      split_threshold(global_threshold, series.size(), weights);
  const auto r = run_volley(spec, series, locals);
  EXPECT_GT(r.global_polls, 0);
  EXPECT_GT(r.true_episodes, 0);
  EXPECT_GT(r.detected_episodes, 0);
  EXPECT_LT(r.sampling_ratio(), 1.0);
}

TEST(Integration, AdaptiveAllocationBeatsEvenUnderSkew) {
  // The Figure 8 mechanism on synthetic monitors: skewed local violation
  // rates (via skewed local thresholds) favor the adaptive allocator.
  const Tick ticks = 20000;
  Rng rng(43);
  std::vector<TimeSeries> series;
  for (int m = 0; m < 5; ++m) {
    TimeSeries s(static_cast<std::size_t>(ticks));
    for (Tick t = 0; t < ticks; ++t) {
      s[static_cast<std::size_t>(t)] = rng.normal(1.0, 0.1);
    }
    series.push_back(std::move(s));
  }
  TaskSpec spec;
  spec.error_allowance = 0.05;
  spec.max_interval = 16;
  spec.patience = 5;
  spec.updating_period = 1000;
  // Graded local-threshold margins (in units of the monitors' sigma = 0.1):
  // monitor 0 sits 3 sigma from its threshold (frequent local violations,
  // hopeless to grow), the others progressively further. The adaptive
  // scheme should starve monitor 0 and feed the mid-margin monitors.
  const std::vector<double> locals{1.3, 1.6, 2.0, 2.5, 5.0};
  spec.global_threshold = 1.3 + 1.6 + 2.0 + 2.5 + 5.0;

  RunOptions even;
  even.allocator = AllocatorKind::kEven;
  RunOptions adapt;
  adapt.allocator = AllocatorKind::kAdaptive;
  const auto r_even = run_volley(spec, series, locals, even);
  const auto r_adapt = run_volley(spec, series, locals, adapt);
  EXPECT_LE(r_adapt.total_ops(), r_even.total_ops() * 1.02);
}

}  // namespace
}  // namespace volley
