// Robustness ("fuzz-lite") suites: the wire decoder and frame reader must
// be total over arbitrary bytes (network input is untrusted), the Config
// parser must never crash on garbage strings, and round-trip properties
// must hold for randomly generated well-formed messages.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "net/framing.h"
#include "net/messages.h"

namespace volley {
namespace {

std::vector<std::byte> random_bytes(Rng& rng, std::size_t max_len) {
  const auto len = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::vector<std::byte> out(len);
  for (auto& b : out) {
    b = static_cast<std::byte>(rng.uniform_int(0, 255));
  }
  return out;
}

TEST(FuzzDecoder, NeverCrashesOnRandomBytes) {
  Rng rng(7001);
  int decoded = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto bytes = random_bytes(rng, 64);
    const auto message = net::decode(bytes);
    if (message) ++decoded;
  }
  // Random bytes occasionally form valid messages (type byte 1..8 with the
  // exact field length); mostly they must be rejected.
  EXPECT_LT(decoded, 2000);
}

TEST(FuzzDecoder, ValidMessagesWithRandomFieldsRoundTrip) {
  Rng rng(7002);
  for (int i = 0; i < 5000; ++i) {
    net::Message message;
    switch (rng.uniform_int(0, 4)) {
      case 0:
        message = net::LocalViolation{
            static_cast<MonitorId>(rng.uniform_int(0, 1 << 30)),
            rng.uniform_int(-(1LL << 40), 1LL << 40),
            rng.normal(0.0, 1e6)};
        break;
      case 1:
        message = net::PollResponse{
            static_cast<MonitorId>(rng.uniform_int(0, 1 << 30)),
            static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 60)),
            rng.uniform_int(0, 1LL << 40), rng.normal(0.0, 1e9)};
        break;
      case 2:
        message = net::StatsReport{
            static_cast<MonitorId>(rng.uniform_int(0, 1 << 30)),
            rng.uniform(), rng.uniform(), rng.uniform_int(0, 1 << 20)};
        break;
      case 3:
        message = net::AllowanceUpdate{rng.uniform()};
        break;
      default:
        message = net::Bye{
            static_cast<MonitorId>(rng.uniform_int(0, 1 << 30)),
            rng.uniform_int(0, 1 << 30), rng.uniform_int(0, 1 << 30)};
        break;
    }
    const auto bytes = net::encode(message);
    const auto decoded = net::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->index(), message.index());
  }
}

TEST(FuzzDecoder, EveryTruncationOfValidMessageIsRejected) {
  const auto bytes = net::encode(net::Message{
      net::PollResponse{3, 99, 1234, 5.5}});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::byte> prefix(bytes.data(), len);
    EXPECT_FALSE(net::decode(prefix).has_value()) << "len=" << len;
  }
}

TEST(FuzzFraming, RandomChunkingPreservesFrames) {
  Rng rng(7003);
  for (int trial = 0; trial < 200; ++trial) {
    // Build a stream of several frames, feed in random-sized chunks, and
    // check the reader yields exactly the original payloads.
    std::vector<std::vector<std::byte>> payloads;
    std::vector<std::byte> stream;
    const int frames = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < frames; ++f) {
      auto payload = random_bytes(rng, 200);
      const auto framed = frame_payload(payload);
      stream.insert(stream.end(), framed.begin(), framed.end());
      payloads.push_back(std::move(payload));
    }
    FrameReader reader;
    std::size_t pos = 0;
    std::size_t next_expected = 0;
    while (pos < stream.size()) {
      const auto chunk = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(stream.size() - pos)));
      reader.feed(std::span<const std::byte>(stream.data() + pos, chunk));
      pos += chunk;
      while (auto frame = reader.next()) {
        ASSERT_LT(next_expected, payloads.size());
        EXPECT_EQ(*frame, payloads[next_expected]);
        ++next_expected;
      }
    }
    EXPECT_EQ(next_expected, payloads.size());
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

TEST(FuzzFraming, GarbageStreamEitherYieldsFramesOrThrowsOnce) {
  // Arbitrary bytes interpreted as frames must never read out of bounds:
  // the reader either produces (garbage) frames, waits for more input, or
  // throws on an oversized length — never undefined behaviour. (Under ASan
  // this test is the real check; here we assert it ends with sane state.)
  Rng rng(7004);
  for (int trial = 0; trial < 500; ++trial) {
    FrameReader reader;
    const auto junk = random_bytes(rng, 512);
    reader.feed(junk);
    try {
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
      // oversized declared length — acceptable defensive rejection
    }
    EXPECT_LE(reader.buffered_bytes(), junk.size());
  }
}

TEST(FuzzConfig, ParserIsTotalOverPrintableGarbage) {
  Rng rng(7005);
  const char charset[] = "abc=123 #\n\r\t.-_";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    for (std::size_t i = 0; i < len; ++i) {
      text += charset[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sizeof(charset) - 2)))];
    }
    try {
      const auto cfg = Config::from_text(text);
      (void)cfg;
    } catch (const std::invalid_argument&) {
      // tokens without '=' are rejected loudly — that is the contract
    }
  }
}

}  // namespace
}  // namespace volley
