// Unit tests for core::Coordinator: local-violation -> global-poll protocol,
// aggregate threshold checks, the no-communication-when-quiet property of
// the local-threshold decomposition, updating-period reallocation, and the
// split_threshold helper.
#include <gtest/gtest.h>

#include <memory>

#include "core/coordinator.h"
#include "core/metric_source.h"
#include "core/task.h"

namespace volley {
namespace {

TaskSpec small_task(double threshold, double err = 0.05) {
  TaskSpec spec;
  spec.global_threshold = threshold;
  spec.error_allowance = err;
  spec.max_interval = 8;
  spec.patience = 2;
  spec.updating_period = 50;
  return spec;
}

std::unique_ptr<Monitor> make_monitor(MonitorId id, const MetricSource& src,
                                      const TaskSpec& spec,
                                      double local_threshold) {
  return std::make_unique<Monitor>(
      id, src, spec.sampler_options(spec.error_allowance), local_threshold);
}

TEST(SplitThreshold, EvenAndWeighted) {
  const auto even = split_threshold(90.0, 3);
  for (double t : even) EXPECT_DOUBLE_EQ(t, 30.0);
  const auto weighted = split_threshold(100.0, 2, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(weighted[0], 25.0);
  EXPECT_DOUBLE_EQ(weighted[1], 75.0);
}

TEST(SplitThreshold, Validation) {
  EXPECT_THROW(split_threshold(10.0, 0), std::invalid_argument);
  EXPECT_THROW(split_threshold(10.0, 2, {1.0}), std::invalid_argument);
  EXPECT_THROW(split_threshold(10.0, 2, {1.0, -1.0}), std::invalid_argument);
}

TEST(Coordinator, RequiresMonitors) {
  TaskSpec spec = small_task(10.0);
  EXPECT_THROW(Coordinator(spec, {}, nullptr), std::invalid_argument);
}

TEST(Coordinator, InitialAllocationIsEven) {
  TaskSpec spec = small_task(10.0, 0.04);
  CallableSource src([](Tick) { return 0.0; }, 1000);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, src, spec, 5.0));
  monitors.push_back(make_monitor(1, src, spec, 5.0));
  Coordinator coordinator(spec, std::move(monitors), nullptr);
  EXPECT_DOUBLE_EQ(coordinator.allocation()[0], 0.02);
  EXPECT_DOUBLE_EQ(coordinator.allocation()[1], 0.02);
  EXPECT_DOUBLE_EQ(coordinator.monitor(0).error_allowance(), 0.02);
}

TEST(Coordinator, QuietMonitorsNeverPoll) {
  // As long as every v_i <= T_i no global poll happens (Section II-A).
  TaskSpec spec = small_task(10.0);
  CallableSource src([](Tick t) { return 0.1 * (t % 3); }, 500);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, src, spec, 5.0));
  monitors.push_back(make_monitor(1, src, spec, 5.0));
  Coordinator coordinator(spec, std::move(monitors), nullptr);
  for (Tick t = 0; t < 500; ++t) {
    const auto result = coordinator.run_tick(t);
    EXPECT_FALSE(result.global_poll);
  }
  EXPECT_EQ(coordinator.global_polls(), 0);
}

TEST(Coordinator, LocalViolationTriggersGlobalPoll) {
  TaskSpec spec = small_task(10.0);
  // Monitor 0 spikes above its local threshold at t == 7, but monitor 1 is
  // low: a poll fires, the aggregate stays under T -> no global violation.
  CallableSource spiky([](Tick t) { return t == 7 ? 6.0 : 0.0; }, 100);
  CallableSource quiet([](Tick) { return 1.0; }, 100);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, spiky, spec, 5.0));
  monitors.push_back(make_monitor(1, quiet, spec, 5.0));
  Coordinator coordinator(spec, std::move(monitors), nullptr);
  bool saw_poll = false;
  for (Tick t = 0; t < 20; ++t) {
    const auto result = coordinator.run_tick(t);
    if (t == 7) {
      EXPECT_TRUE(result.global_poll);
      EXPECT_FALSE(result.global_violation);
      EXPECT_DOUBLE_EQ(result.global_value, 7.0);
      saw_poll = true;
    }
  }
  EXPECT_TRUE(saw_poll);
  EXPECT_EQ(coordinator.global_polls(), 1);
  EXPECT_EQ(coordinator.global_violations(), 0);
}

TEST(Coordinator, GlobalViolationDetected) {
  TaskSpec spec = small_task(10.0);
  CallableSource high([](Tick t) { return t == 3 ? 8.0 : 0.0; }, 100);
  CallableSource medium([](Tick t) { return t == 3 ? 4.0 : 0.0; }, 100);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, high, spec, 5.0));
  monitors.push_back(make_monitor(1, medium, spec, 5.0));
  Coordinator coordinator(spec, std::move(monitors), nullptr);
  bool detected = false;
  for (Tick t = 0; t < 10; ++t) {
    if (coordinator.run_tick(t).global_violation) detected = true;
  }
  EXPECT_TRUE(detected);
  EXPECT_EQ(coordinator.global_violations(), 1);
}

TEST(Coordinator, PollChargesForcedOpsOnlyToIdleMonitors) {
  TaskSpec spec = small_task(10.0);
  CallableSource spiky([](Tick t) { return t == 0 ? 6.0 : 0.0; }, 100);
  CallableSource quiet([](Tick) { return 0.0; }, 100);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, spiky, spec, 5.0));
  monitors.push_back(make_monitor(1, quiet, spec, 5.0));
  Coordinator coordinator(spec, std::move(monitors), nullptr);
  coordinator.run_tick(0);
  // Both monitors sampled at t=0 on schedule, so the poll was served from
  // cache everywhere: zero forced ops.
  EXPECT_EQ(coordinator.monitor(0).forced_ops(), 0);
  EXPECT_EQ(coordinator.monitor(1).forced_ops(), 0);
}

TEST(Coordinator, PollForcesSamplesOnNotDueMonitors) {
  TaskSpec spec = small_task(10.0);
  spec.patience = 1;
  // Monitor 0's series is high-variance (sigma ~ its threshold margin), so
  // beta stays above err and it never leaves the default interval; monitor 1
  // grows on its quiet series. When monitor 0 violates during [60, 70], the
  // polls must force-sample monitor 1 between its scheduled samples.
  CallableSource spiky(
      [](Tick t) {
        if (t >= 60 && t <= 70) return 6.0;
        return t % 2 == 0 ? 0.0 : 4.9;
      },
      200);
  CallableSource quiet([](Tick t) { return 0.001 * (t % 2); }, 200);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, spiky, spec, 5.0));
  monitors.push_back(make_monitor(1, quiet, spec, 5.0));
  Coordinator coordinator(spec, std::move(monitors), nullptr);
  for (Tick t = 0; t <= 70; ++t) coordinator.run_tick(t);
  EXPECT_GE(coordinator.global_polls(), 5);
  EXPECT_GE(coordinator.monitor(1).forced_ops(), 5);
}

TEST(Coordinator, ReallocatesOncePerUpdatingPeriod) {
  TaskSpec spec = small_task(10.0);
  spec.updating_period = 25;
  CallableSource src([](Tick t) { return 0.001 * (t % 2); }, 200);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, src, spec, 5.0));
  monitors.push_back(make_monitor(1, src, spec, 5.0));
  Coordinator coordinator(spec, std::move(monitors),
                          std::make_unique<AdaptiveAllocation>());
  for (Tick t = 0; t < 110; ++t) coordinator.run_tick(t);
  // Periods end at t = 25, 50, 75, 100.
  EXPECT_EQ(coordinator.reallocations(), 4);
  // Allocation still sums to err.
  double sum = 0.0;
  for (double a : coordinator.allocation()) sum += a;
  EXPECT_NEAR(sum, spec.error_allowance, 1e-9);
}

TEST(Coordinator, NoAllocatorMeansNoReallocations) {
  TaskSpec spec = small_task(10.0);
  spec.updating_period = 10;
  CallableSource src([](Tick) { return 0.0; }, 100);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, src, spec, 10.0));
  Coordinator coordinator(spec, std::move(monitors), nullptr);
  for (Tick t = 0; t < 100; ++t) coordinator.run_tick(t);
  EXPECT_EQ(coordinator.reallocations(), 0);
}

TEST(Coordinator, TotalOpsAggregatesMonitors) {
  TaskSpec spec = small_task(10.0);
  CallableSource src([](Tick) { return 0.0; }, 50);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(make_monitor(0, src, spec, 5.0));
  monitors.push_back(make_monitor(1, src, spec, 5.0));
  Coordinator coordinator(spec, std::move(monitors), nullptr);
  for (Tick t = 0; t < 50; ++t) coordinator.run_tick(t);
  EXPECT_EQ(coordinator.total_ops(), coordinator.monitor(0).total_ops() +
                                         coordinator.monitor(1).total_ops());
  EXPECT_GT(coordinator.total_ops(), 0);
}

}  // namespace
}  // namespace volley
