// Tests for the CLI glue: the config-driven MetricSource factory used by
// the volleyd_monitor daemon.
#include <gtest/gtest.h>

#include "common/config.h"
#include "tools/source_factory.h"
#include "trace/sysmetrics.h"

namespace volley {
namespace {

TEST(SourceFactory, DefaultsToSine) {
  const auto cfg = Config::from_args({"ticks=100"});
  const auto source = tools::make_source(cfg);
  ASSERT_TRUE(source);
  EXPECT_EQ(source->length(), 100);
}

TEST(SourceFactory, SineRespectsParameters) {
  const auto cfg = Config::from_args(
      {"source=sine", "ticks=50", "base=10", "amplitude=0", "noise=0"});
  const auto source = tools::make_source(cfg);
  for (Tick t = 0; t < 50; t += 13) {
    EXPECT_NEAR(source->value_at(t), 10.0, 1e-9);
  }
}

TEST(SourceFactory, SineSpikeApplies) {
  const auto cfg = Config::from_args(
      {"source=sine", "ticks=100", "base=0", "amplitude=0", "noise=0",
       "spike_at=40", "spike_len=5", "spike_value=7"});
  const auto source = tools::make_source(cfg);
  EXPECT_NEAR(source->value_at(39), 0.0, 1e-9);
  EXPECT_NEAR(source->value_at(42), 7.0, 1e-9);
  EXPECT_NEAR(source->value_at(45), 0.0, 1e-9);
}

TEST(SourceFactory, NetflowSourceWithAttack) {
  const auto cfg = Config::from_args(
      {"source=netflow", "vms=2", "vm=1", "ticks=300", "mean_flows=30",
       "attack_at=200", "attack_peak=5000"});
  const auto source = tools::make_source(cfg);
  EXPECT_EQ(source->length(), 300);
  // Attack plateau dominates benign rho.
  double peak = 0.0;
  for (Tick t = 200; t < 230; ++t) {
    peak = std::max(peak, source->value_at(t));
  }
  EXPECT_GT(peak, 1000.0);
  // Inspection cost series is attached (netflow source carries packets).
  EXPECT_GT(source->sampling_cost(210), 1.0);
}

TEST(SourceFactory, NetflowRejectsBadVm) {
  const auto cfg = Config::from_args({"source=netflow", "vms=2", "vm=5"});
  EXPECT_THROW(tools::make_source(cfg), std::invalid_argument);
}

TEST(SourceFactory, SysmetricByIndexAndByName) {
  const auto by_index = tools::make_source(Config::from_args(
      {"source=sysmetric", "metric=0", "ticks=200"}));
  const auto by_name = tools::make_source(Config::from_args(
      {"source=sysmetric", "metric=cpu.user", "ticks=200"}));
  for (Tick t = 0; t < 200; t += 37) {
    EXPECT_DOUBLE_EQ(by_index->value_at(t), by_name->value_at(t));
  }
}

TEST(SourceFactory, SysmetricUnknownNameThrows) {
  const auto cfg =
      Config::from_args({"source=sysmetric", "metric=cpu.bogus"});
  EXPECT_THROW(tools::make_source(cfg), std::invalid_argument);
}

TEST(SourceFactory, HttpSourceYieldsCounts) {
  const auto cfg = Config::from_args(
      {"source=http", "objects=2", "object=0", "ticks=400", "mean_rps=10"});
  const auto source = tools::make_source(cfg);
  EXPECT_EQ(source->length(), 400);
  for (Tick t = 0; t < 400; t += 41) {
    EXPECT_GE(source->value_at(t), 0.0);
  }
}

TEST(SourceFactory, UnknownKindThrows) {
  const auto cfg = Config::from_args({"source=quantum"});
  EXPECT_THROW(tools::make_source(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace volley
