// Tests for the fault-injection driver and the threshold-split strategies:
// graceful degradation under message loss, stale-value fallbacks during
// outages, and the conditioning properties of the split strategies.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "core/threshold_split.h"
#include "sim/faults.h"

namespace volley {
namespace {

TimeSeries noisy_series(Tick ticks, std::uint64_t seed, double sigma,
                        double burst_at = -1, double burst_value = 0,
                        Tick burst_len = 0) {
  Rng rng(seed);
  TimeSeries s(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    double v = rng.normal(0.0, sigma);
    if (burst_at >= 0 && t >= burst_at && t < burst_at + burst_len) {
      v += burst_value;
    }
    s[static_cast<std::size_t>(t)] = v;
  }
  return s;
}

TaskSpec spec_for(double threshold) {
  TaskSpec spec;
  spec.global_threshold = threshold;
  spec.error_allowance = 0.04;
  spec.max_interval = 16;
  spec.updating_period = 500;
  return spec;
}

TEST(FaultPlan, Validation) {
  FaultPlan plan;
  plan.violation_report_loss = 1.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = FaultPlan{};
  plan.outages.push_back(MonitorOutage{0, 10, 5});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsEmptyAndOverlappingOutageWindows) {
  FaultPlan plan;
  plan.outages.push_back(MonitorOutage{0, 10, 10});  // empty: end == start
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.outages.push_back(MonitorOutage{0, 0, 100});
  plan.outages.push_back(MonitorOutage{0, 50, 150});  // overlaps the first
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  // Order in the plan must not matter: the same overlap listed backwards.
  plan = FaultPlan{};
  plan.outages.push_back(MonitorOutage{0, 50, 150});
  plan.outages.push_back(MonitorOutage{0, 0, 100});
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  // Back-to-back windows (end is exclusive) and overlaps across *different*
  // monitors are both legitimate plans.
  plan = FaultPlan{};
  plan.outages.push_back(MonitorOutage{0, 0, 100});
  plan.outages.push_back(MonitorOutage{0, 100, 150});
  plan.outages.push_back(MonitorOutage{1, 50, 150});
  EXPECT_NO_THROW(plan.validate());
}

TEST(NetFaultPlan, Validation) {
  NetFaultPlan plan;
  EXPECT_NO_THROW(plan.validate());
  plan.heartbeat_loss = 1.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = NetFaultPlan{};
  plan.delay_prob = 0.5;  // delaying with delay_ms == 0 makes no sense
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.delay_ms = 20;
  EXPECT_NO_THROW(plan.validate());
  plan = NetFaultPlan{};
  plan.disconnect_after_frames = 0;  // -1 disables, positive counts frames
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = NetFaultPlan{};
  plan.message_loss.violation_report_loss = 1.5;  // nested plan is checked
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultyRun, NoFaultsMatchesHealthyDetection) {
  std::vector<TimeSeries> series{
      noisy_series(4000, 1, 0.1, 2000, 5.0, 60),
      noisy_series(4000, 2, 0.1)};
  const std::vector<double> locals{2.0, 2.0};
  const auto faulty =
      run_volley_faulty(spec_for(4.0), series, locals, FaultPlan{});
  EXPECT_EQ(faulty.lost_reports, 0);
  EXPECT_EQ(faulty.lost_responses, 0);
  EXPECT_GT(faulty.run.true_episodes, 0);
  EXPECT_EQ(faulty.run.detected_episodes, faulty.run.true_episodes);
}

TEST(FaultyRun, ReportLossDropsDetections) {
  // Single-tick spikes: each missed report is a missed alert instant.
  Rng rng(7);
  TimeSeries spiky(8000, 0.0);
  for (Tick t = 100; t < 8000; t += 100) {
    spiky[static_cast<std::size_t>(t)] = 10.0;
  }
  TimeSeries quiet = noisy_series(8000, 3, 0.01);
  std::vector<TimeSeries> series{spiky, quiet};
  const std::vector<double> locals{3.0, 3.0};

  FaultPlan lossy;
  lossy.violation_report_loss = 0.5;
  const auto healthy =
      run_volley_faulty(spec_for(6.0), series, locals, FaultPlan{});
  const auto faulty =
      run_volley_faulty(spec_for(6.0), series, locals, lossy);
  EXPECT_GT(faulty.lost_reports, 10);
  EXPECT_LT(faulty.run.detected_alert_ticks, healthy.run.detected_alert_ticks);
  // Roughly half the reports survive.
  const double survived =
      static_cast<double>(faulty.run.detected_alert_ticks) /
      static_cast<double>(healthy.run.detected_alert_ticks);
  EXPECT_NEAR(survived, 0.5, 0.2);
}

TEST(FaultyRun, ResponseLossUsesStaleValues) {
  std::vector<TimeSeries> series{
      noisy_series(3000, 4, 0.05, 1500, 5.0, 50),
      noisy_series(3000, 5, 0.05)};
  const std::vector<double> locals{2.0, 2.0};
  FaultPlan lossy;
  lossy.poll_response_loss = 0.5;
  const auto faulty = run_volley_faulty(spec_for(4.0), series, locals, lossy);
  EXPECT_GT(faulty.lost_responses, 0);
  EXPECT_GT(faulty.stale_polls, 0);
  // The violating monitor itself reports fresh values often enough that
  // the sustained episode is still found.
  EXPECT_EQ(faulty.run.detected_episodes, faulty.run.true_episodes);
}

TEST(FaultyRun, OutageSilencesAMonitor) {
  std::vector<TimeSeries> series{
      noisy_series(2000, 6, 0.05, 1000, 5.0, 40),
      noisy_series(2000, 7, 0.05)};
  const std::vector<double> locals{2.0, 2.0};
  FaultPlan plan;
  // The spiking monitor is down exactly during its violation window.
  plan.outages.push_back(MonitorOutage{0, 990, 1050});
  const auto faulty = run_volley_faulty(spec_for(4.0), series, locals, plan);
  EXPECT_GT(faulty.outage_monitor_ticks, 0);
  EXPECT_EQ(faulty.run.detected_episodes, 0);  // nobody saw it
  const auto healthy =
      run_volley_faulty(spec_for(4.0), series, locals, FaultPlan{});
  EXPECT_GT(healthy.run.detected_episodes, 0);
}

TEST(FaultyRun, OutageOfBystanderKeepsDetection) {
  std::vector<TimeSeries> series{
      noisy_series(2000, 8, 0.05, 1000, 5.0, 40),
      noisy_series(2000, 9, 0.05)};
  const std::vector<double> locals{2.0, 2.0};
  FaultPlan plan;
  plan.outages.push_back(MonitorOutage{1, 900, 1100});  // quiet monitor down
  const auto faulty = run_volley_faulty(spec_for(4.0), series, locals, plan);
  // Stale value of the quiet monitor (~0) still lets the aggregate cross.
  EXPECT_EQ(faulty.run.detected_episodes, faulty.run.true_episodes);
  EXPECT_GT(faulty.stale_polls, 0);
}

// --- threshold-split strategies ------------------------------------

TEST(ThresholdSplit, EvenSumsToGlobal) {
  const auto t = split_even(12.0, 4);
  EXPECT_NEAR(std::accumulate(t.begin(), t.end(), 0.0), 12.0, 1e-9);
  for (double x : t) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(ThresholdSplit, SpreadGivesNoisyMonitorsMoreRoom) {
  std::vector<TimeSeries> series{noisy_series(5000, 10, 1.0),
                                 noisy_series(5000, 11, 0.1)};
  const auto t = split_by_spread(10.0, series);
  EXPECT_GT(t[0], t[1]);
  EXPECT_NEAR(t[0] / t[1], 10.0, 3.0);  // roughly the sigma ratio
  EXPECT_NEAR(std::accumulate(t.begin(), t.end(), 0.0), 10.0, 1e-9);
}

TEST(ThresholdSplit, SpreadEqualizesViolationRates) {
  // With per-sigma-proportional thresholds, heterogeneous monitors get
  // comparable local violation rates — the conditioning property.
  std::vector<TimeSeries> series{noisy_series(50000, 12, 2.0),
                                 noisy_series(50000, 13, 0.2)};
  const double T = 12.0;
  const auto locals = split_by_spread(T, series);
  std::vector<double> rates;
  for (std::size_t i = 0; i < series.size(); ++i) {
    int violations = 0;
    for (std::size_t t = 0; t < series[i].size(); ++t) {
      if (series[i][t] > locals[i]) ++violations;
    }
    rates.push_back(static_cast<double>(violations) /
                    static_cast<double>(series[i].size()));
  }
  // Same margin in sigma units -> rates within a small factor.
  if (rates[1] > 0) {
    EXPECT_LT(rates[0] / rates[1], 10.0);
  }
}

TEST(ThresholdSplit, TailFollowsAlertScale) {
  TimeSeries attacked = noisy_series(5000, 14, 0.5, 2500, 100.0, 50);
  TimeSeries quiet = noisy_series(5000, 15, 0.5);
  std::vector<TimeSeries> series{attacked, quiet};
  const auto t = split_by_tail(50.0, series, 0.5);
  EXPECT_GT(t[0], 5.0 * t[1]);  // attack tail dominates
}

TEST(ThresholdSplit, Validation) {
  EXPECT_THROW(split_by_tail(1.0, {}, 1.0), std::invalid_argument);
  std::vector<TimeSeries> one{noisy_series(100, 16, 1.0)};
  EXPECT_THROW(split_by_spread(1.0, one, 90.0, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace volley
