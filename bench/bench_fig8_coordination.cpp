// Figure 8 — distributed sampling coordination: total sampling ratio of a
// 10-monitor task as the skew of per-monitor local violation rates grows
// from uniform (0) to Zipf(2.0), comparing
//   even  — error allowance re-divided evenly every updating period,
//   adapt — the paper's iterative yield-proportional reallocation
//           (damped; see AdaptiveAllocation::Options::smoothing).
// Paper: the even scheme degrades as skew grows; adapt reduces cost
// significantly more by moving allowance from monitors with low
// cost-reduction yield to those with high yield.
//
// Monitors watch traces of *different volatility* (like the paper's traces
// (e) and (f)): the roughest trace receives the highest local violation
// rate. Yield diversity across monitors is exactly what the adaptive
// allocation exploits; with identical traces the schemes tie.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "sim/runner.h"

namespace volley {
namespace {

/// Mean-reverting series; smaller theta => smoother trace whose value
/// distribution is many delta-sigmas wide (cheap to monitor sparsely).
TimeSeries make_series(Tick ticks, std::uint64_t seed, double theta) {
  Rng rng(seed);
  TimeSeries s(static_cast<std::size_t>(ticks));
  double x = 0.0;
  for (Tick t = 0; t < ticks; ++t) {
    x += theta * (0.0 - x) + rng.normal(0.0, 1.0);
    s[static_cast<std::size_t>(t)] = x;
  }
  return s;
}

void run() {
  constexpr std::size_t kMonitors = 10;
  constexpr Tick kTicks = 40000;
  constexpr double kTotalViolationShare = 0.05;  // 5% of ticks fleet-wide
  constexpr double kErr = 0.02;

  std::vector<TimeSeries> series;
  for (std::size_t m = 0; m < kMonitors; ++m) {
    // Roughest first (theta 0.05) down to smoothest (theta 0.0005).
    const double theta =
        0.05 * std::pow(0.01, static_cast<double>(m) /
                                  static_cast<double>(kMonitors - 1));
    series.push_back(make_series(kTicks, 1000 + m, theta));
  }

  bench::print_header(
      "Figure 8 — error-allowance coordination under skewed local violation "
      "rates",
      "'adapt' outperforms 'even'; the gap grows with skew (paper Fig. 8)");
  std::printf("%zu monitors of decreasing volatility, %lld ticks, err=%.2f; "
              "local violation rates ~ Zipf(skew), total share %.0f%%, "
              "roughest monitor gets the highest rate\n\n",
              kMonitors, static_cast<long long>(kTicks), kErr,
              100.0 * kTotalViolationShare);

  bench::print_row({"skew", "even", "adapt", "adapt gain"});

  for (double skew : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ZipfDistribution zipf(kMonitors, skew);
    std::vector<double> locals(kMonitors);
    double global_threshold = 0.0;
    for (std::size_t m = 0; m < kMonitors; ++m) {
      // pmf sums to 1 over monitors, so per-monitor rates sum to the total.
      const double rate = kTotalViolationShare * zipf.pmf(m + 1);
      const double k_percent = std::min(100.0 * rate, 50.0);
      locals[m] = series[m].threshold_for_selectivity(k_percent);
      global_threshold += locals[m];
    }

    TaskSpec spec;
    spec.global_threshold = global_threshold;
    spec.error_allowance = kErr;
    spec.max_interval = 40;
    spec.updating_period = 1000;

    RunOptions even;
    even.allocator = AllocatorKind::kEven;
    RunOptions adapt;
    adapt.allocator = AllocatorKind::kAdaptive;
    const auto r_even = run_volley(spec, series, locals, even);
    const auto r_adapt = run_volley(spec, series, locals, adapt);

    bench::print_row(
        {bench::fmt(skew, 1), bench::fmt(r_even.sampling_ratio(), 3),
         bench::fmt(r_adapt.sampling_ratio(), 3),
         bench::fmt_pct(1.0 - r_adapt.sampling_ratio() /
                                  std::max(r_even.sampling_ratio(), 1e-12))});
  }
  std::printf("\n(ratio = task ops incl. global polls / periodic ops; "
              "adapt gain = relative op reduction vs even)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
