// Two-tier shard scaling benchmark (DESIGN.md §13).
//
// Part 1 — flat vs sharded coordination at 10k / 100k / 1M monitors on the
// sim tier. The fleet is quiet (every sampler pinned at Im) except for a
// small hot block of monitors that trips local violations every few ticks
// while its shard's subset aggregate stays under T_s. That is the scaling
// mechanism under test: the flat coordinator answers each local violation
// with an n-sample global poll, the sharded tier with an n/S-sample subset
// poll, so the hot block's cost shrinks by ~S while detection is untouched
// (Σ T_s = T: all subsets quiet ⇒ no global violation). Timed wall-clock
// throughput (ticks/sec over the hot window) and the op counts are both
// reported; the headline is sharded/flat throughput at 100k+.
//
// Part 2 — the shards == 1 identity: a ShardedCoordinator with one shard
// is driven against a flat Coordinator built with the same allocator over
// the same fleet, and every accounting field plus the run-scoped metrics
// snapshot must match exactly (the discipline the due index and likelihood
// kernel already live under).
//
// Part 3 — a real two-tier fleet over loopback TCP: one root coordinator,
// three AggregatorNode shards, twelve MonitorNodes. A hot monitor in shard
// 0 pushes the global aggregate over T: the bench reports escalations,
// summary frames, and the root's alerts.
//
// VOLLEY_BENCH_QUICK=1 shrinks all parts to smoke size. Emits
// BENCH_shard.json (schema checked by the CI bench-smoke job). The global
// trace sink is off while the bench runs so the numbers measure the
// coordination hot path, not the trace ring.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/coordinator.h"
#include "core/error_allocation.h"
#include "core/metric_source.h"
#include "core/monitor.h"
#include "core/task.h"
#include "net/aggregator_node.h"
#include "net/coordinator_node.h"
#include "net/monitor_node.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"
#include "shard/runner.h"
#include "shard/sharded_coordinator.h"

namespace volley {
namespace {

/// Deterministic value hash (as in bench_scale): per-monitor series are
/// computed on the fly — 1M monitors of TimeSeries would dwarf the
/// structures being measured — and every mode replays the same values.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = (a + 1) * 0x9e3779b97f4a7c15ull ^
                    (b + 0x2545f4914f6cdd1dull) * 0xbf58476d1ce4e5b9ull;
  h ^= h >> 31;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 28;
  return h;
}

struct FleetShape {
  std::size_t monitors{0};
  std::size_t shards{0};  // 0 = flat coordinator
  Tick warmup{0};
  Tick timed{0};
  Tick max_interval{0};
  Tick hot_every{0};         // hot-block violation period (timed phase)
  Tick hot_window{0};        // consecutive hot ticks per period
  std::size_t hot_block{0};  // leading monitors that go hot
};

struct FleetOutcome {
  std::int64_t total_ops{0};
  std::int64_t forced_ops{0};
  double total_cost{0.0};
  std::int64_t local_violations{0};
  std::int64_t polls{0};  // flat: global polls; sharded: subset polls
  std::int64_t escalations{0};
  std::int64_t reallocations{0};
  double timed_seconds{0.0};
  Tick timed_ticks{0};
  std::string metrics_json;

  double ticks_per_sec() const {
    return timed_seconds > 0.0
               ? static_cast<double>(timed_ticks) / timed_seconds
               : 0.0;
  }
};

TaskSpec fleet_spec(std::size_t n, Tick max_interval, Tick total) {
  TaskSpec spec;
  // Local threshold 2.0 per monitor: the quiet baseline (~1.0) leaves a
  // large margin relative to its tiny wiggle, so every sampler climbs to
  // Im; hot monitors at 3.0 trip it. A hot block of B monitors moves the
  // subset aggregate by ~2B, far under T_s = 2 n_s for n_s >> B.
  spec.global_threshold = 2.0 * static_cast<double>(n);
  spec.error_allowance = 0.05;
  spec.max_interval = max_interval;
  spec.patience = 1;
  // No reallocation round inside the measured window: draining stats is
  // O(monitors) at both tiers and would blur the poll-containment numbers
  // (tests/test_shard.cpp exercises the realloc path).
  spec.updating_period = total + 1;
  spec.estimator.stats_window = 32;
  return spec;
}

std::vector<std::unique_ptr<Monitor>> build_fleet(
    const FleetShape& shape, const TaskSpec& spec,
    std::vector<std::unique_ptr<CallableSource>>& sources) {
  const Tick total = shape.warmup + shape.timed;
  const Tick warmup = shape.warmup;
  const Tick hot_every = shape.hot_every;
  const Tick hot_window = shape.hot_window;
  // A monitor pinned at Im would sample right past short hot windows, so
  // the block goes continuously hot over the last Im warmup ticks: the one
  // scheduled sample that lands there resets its interval, and from then
  // on the periodic windows keep it in the low-interval violation regime —
  // the steady state the timed phase measures.
  const Tick hot_ramp = warmup - shape.max_interval;
  sources.reserve(shape.monitors);
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.reserve(shape.monitors);
  for (std::size_t i = 0; i < shape.monitors; ++i) {
    const auto id = static_cast<MonitorId>(i);
    const bool hot = i < shape.hot_block;
    // Quiet: ~1.0 with a deterministic 1e-6 wiggle (margin/noise large
    // enough that β̄ stays under even the 1M-way per-monitor allowance
    // split, so the AIMD climb reaches Im). Hot: 3.0 for hot_window
    // consecutive ticks every hot_every ticks.
    sources.push_back(std::make_unique<CallableSource>(
        [id, hot, warmup, hot_every, hot_window, hot_ramp](Tick t) {
          const bool burning =
              hot && t >= hot_ramp &&
              (t < warmup || (t - warmup) % hot_every < hot_window);
          if (burning) return 3.0;
          const std::uint64_t h = mix(id, static_cast<std::uint64_t>(t));
          return 1.0 + 1e-6 * static_cast<double>(h & 1023u) / 1024.0;
        },
        total));
    monitors.push_back(std::make_unique<Monitor>(
        id, *sources.back(), spec.sampler_options(spec.error_allowance),
        2.0));
  }
  return monitors;
}

FleetOutcome run_flat(const FleetShape& shape) {
  FleetOutcome out;
  obs::MetricsRegistry registry;
  {
    obs::ScopedMetricsRegistry scope(registry);
    const Tick total = shape.warmup + shape.timed;
    const TaskSpec spec = fleet_spec(shape.monitors, shape.max_interval,
                                     total);
    std::vector<std::unique_ptr<CallableSource>> sources;
    auto monitors = build_fleet(shape, spec, sources);
    // Same allocator the sharded tiers use (never fires: updating_period
    // exceeds the run), so the S == 1 identity compares equals.
    Coordinator coordinator(
        spec, std::move(monitors),
        shard::make_allocator_factory(AllocatorKind::kAdaptive)(
            shape.monitors));

    for (Tick t = 0; t < shape.warmup; ++t) {
      coordinator.run_tick(t);
    }
    // Ops/polls are reported for the timed window only: the warm-up (AIMD
    // climb plus the hot block's catch ramp) is identical noise in every
    // mode.
    const std::int64_t base_ops = coordinator.total_ops();
    const double base_cost = coordinator.total_cost();
    const std::int64_t base_polls = coordinator.global_polls();
    std::int64_t base_forced = 0;
    for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
      base_forced += coordinator.monitor(i).forced_ops();
    }
    const double t0 = bench::now_seconds();
    for (Tick t = shape.warmup; t < total; ++t) {
      const auto tick = coordinator.run_tick(t);
      out.local_violations += tick.local_violations;
    }
    out.timed_seconds = bench::now_seconds() - t0;
    out.timed_ticks = shape.timed;
    out.total_ops = coordinator.total_ops() - base_ops;
    out.total_cost = coordinator.total_cost() - base_cost;
    out.polls = coordinator.global_polls() - base_polls;
    out.reallocations = coordinator.reallocations();
    out.forced_ops = -base_forced;
    for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
      out.forced_ops += coordinator.monitor(i).forced_ops();
    }
    out.metrics_json = registry.to_json();
  }
  return out;
}

FleetOutcome run_sharded(const FleetShape& shape) {
  FleetOutcome out;
  obs::MetricsRegistry registry;
  {
    obs::ScopedMetricsRegistry scope(registry);
    const Tick total = shape.warmup + shape.timed;
    const TaskSpec spec = fleet_spec(shape.monitors, shape.max_interval,
                                     total);
    std::vector<std::unique_ptr<CallableSource>> sources;
    auto monitors = build_fleet(shape, spec, sources);
    shard::ShardedCoordinator coordinator(
        spec, std::move(monitors), shape.shards,
        shard::make_allocator_factory(AllocatorKind::kAdaptive));

    for (Tick t = 0; t < shape.warmup; ++t) {
      coordinator.run_tick(t);
    }
    const std::int64_t base_ops = coordinator.total_ops();
    const double base_cost = coordinator.total_cost();
    const std::int64_t base_polls = coordinator.shard_polls();
    std::int64_t base_forced = 0;
    for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
      base_forced += coordinator.monitor(i).forced_ops();
    }
    const double t0 = bench::now_seconds();
    for (Tick t = shape.warmup; t < total; ++t) {
      const auto tick = coordinator.run_tick(t);
      out.local_violations += tick.local_violations;
    }
    out.timed_seconds = bench::now_seconds() - t0;
    out.timed_ticks = shape.timed;
    out.total_ops = coordinator.total_ops() - base_ops;
    out.total_cost = coordinator.total_cost() - base_cost;
    out.polls = coordinator.shard_polls() - base_polls;
    out.escalations = coordinator.escalations();
    out.reallocations = coordinator.reallocations();
    out.forced_ops = -base_forced;
    for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
      out.forced_ops += coordinator.monitor(i).forced_ops();
    }
    out.metrics_json = registry.to_json();
  }
  return out;
}

bool same_outcome(const FleetOutcome& a, const FleetOutcome& b) {
  return a.total_ops == b.total_ops && a.forced_ops == b.forced_ops &&
         a.total_cost == b.total_cost &&
         a.local_violations == b.local_violations && a.polls == b.polls &&
         a.reallocations == b.reallocations &&
         a.metrics_json == b.metrics_json;
}

struct ScaleRow {
  std::size_t monitors{0};
  std::size_t shards{0};
  FleetOutcome flat;
  FleetOutcome sharded;

  double speedup() const {
    return flat.ticks_per_sec() > 0.0
               ? sharded.ticks_per_sec() / flat.ticks_per_sec()
               : 0.0;
  }
  double ops_ratio() const {
    return sharded.total_ops > 0
               ? static_cast<double>(flat.total_ops) /
                     static_cast<double>(sharded.total_ops)
               : 0.0;
  }
};

// --- Part 3: loopback two-tier fleet ----------------------------------

struct NetOutcome {
  std::size_t shards{0};
  std::size_t monitors{0};
  std::int64_t root_polls{0};
  std::size_t root_alerts{0};
  std::int64_t escalations{0};
  std::int64_t summaries{0};
  std::int64_t subset_polls{0};
  double run_seconds{0.0};
};

NetOutcome run_net_fleet(std::size_t shards, std::size_t per_shard,
                         Tick ticks) {
  NetOutcome out;
  out.shards = shards;
  out.monitors = shards * per_shard;
  const double global_threshold = 2.0 * static_cast<double>(out.monitors);

  net::CoordinatorNodeOptions root_options;
  root_options.monitors = shards;
  root_options.total_weight = out.monitors;
  root_options.global_threshold = global_threshold;
  root_options.error_allowance = 0.04;
  net::CoordinatorNode root(root_options);

  std::vector<std::unique_ptr<net::AggregatorNode>> aggregators;
  for (std::uint32_t s = 0; s < shards; ++s) {
    net::AggregatorNodeOptions agg_options;
    agg_options.shard_id = s;
    agg_options.coordinator_port = root.port();
    agg_options.monitors = per_shard;
    agg_options.global_threshold =
        global_threshold / static_cast<double>(shards);
    agg_options.error_allowance = 0.04 / static_cast<double>(shards);
    agg_options.summary_interval_ms = 50;
    agg_options.heartbeat_interval_ms = 100;
    aggregators.push_back(std::make_unique<net::AggregatorNode>(agg_options));
  }

  std::vector<std::unique_ptr<CallableSource>> sources;
  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t i = 0; i < per_shard; ++i) {
      // Monitor 0 of shard 0 carries a window heavy enough to push the
      // global aggregate over T through the escalation path.
      const bool hot = s == 0 && i == 0;
      const double spike = 3.0 * static_cast<double>(out.monitors);
      sources.push_back(std::make_unique<CallableSource>(
          [hot, spike, ticks](Tick t) {
            return hot && t >= ticks / 4 && t < ticks / 2 ? spike : 1.0;
          },
          ticks));
      net::MonitorNodeOptions mon_options;
      mon_options.id = static_cast<MonitorId>(i);
      mon_options.coordinator_port = aggregators[s]->port();
      mon_options.local_threshold =
          global_threshold / static_cast<double>(out.monitors);
      mon_options.sampler.error_allowance = 0.005;
      mon_options.sampler.patience = 3;
      mon_options.sampler.max_interval = 8;
      mon_options.ticks = ticks;
      mon_options.updating_period = 100;
      mon_options.tick_micros = 200;
      nodes.push_back(
          std::make_unique<net::MonitorNode>(mon_options, *sources.back()));
    }
  }

  const double t0 = bench::now_seconds();
  std::thread root_thread([&root] { root.run(); });
  std::vector<std::thread> aggregator_threads;
  for (auto& aggregator : aggregators) {
    aggregator_threads.emplace_back([&aggregator] { aggregator->run(); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<std::thread> monitor_threads;
  for (auto& node : nodes) {
    monitor_threads.emplace_back([&node] { node->run(); });
  }
  for (auto& t : monitor_threads) t.join();
  for (auto& t : aggregator_threads) t.join();
  root_thread.join();
  out.run_seconds = bench::now_seconds() - t0;

  out.root_polls = root.global_polls();
  out.root_alerts = root.alerts().size();
  for (const auto& aggregator : aggregators) {
    out.escalations += aggregator->escalations();
    out.summaries += aggregator->summaries_sent();
    out.subset_polls += aggregator->downstream().global_polls();
  }
  return out;
}

// --- driver -----------------------------------------------------------

void write_shard_json(bool quick, bool identity,
                      const std::vector<ScaleRow>& rows,
                      const NetOutcome& net) {
  std::FILE* f = std::fopen("BENCH_shard.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench shard: cannot write BENCH_shard.json\n");
    return;
  }
  std::fprintf(f, "{\"bench\":\"shard\",\"quick\":%s,\"identity\":%s,\"sim\":[",
               quick ? "true" : "false", identity ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "%s{\"monitors\":%zu,\"shards\":%zu,"
        "\"flat_ticks_per_sec\":%.1f,\"sharded_ticks_per_sec\":%.1f,"
        "\"speedup\":%.3f,\"flat_ops\":%lld,\"sharded_ops\":%lld,"
        "\"flat_forced_ops\":%lld,\"sharded_forced_ops\":%lld,"
        "\"ops_ratio\":%.3f,\"flat_polls\":%lld,\"subset_polls\":%lld,"
        "\"escalations\":%lld}",
        i == 0 ? "" : ",", r.monitors, r.shards, r.flat.ticks_per_sec(),
        r.sharded.ticks_per_sec(), r.speedup(),
        static_cast<long long>(r.flat.total_ops),
        static_cast<long long>(r.sharded.total_ops),
        static_cast<long long>(r.flat.forced_ops),
        static_cast<long long>(r.sharded.forced_ops), r.ops_ratio(),
        static_cast<long long>(r.flat.polls),
        static_cast<long long>(r.sharded.polls),
        static_cast<long long>(r.sharded.escalations));
  }
  std::fprintf(f,
               "],\"net\":{\"shards\":%zu,\"monitors\":%zu,"
               "\"root_polls\":%lld,\"root_alerts\":%zu,"
               "\"escalations\":%lld,\"summaries\":%lld,"
               "\"subset_polls\":%lld,\"run_seconds\":%.3f}}\n",
               net.shards, net.monitors,
               static_cast<long long>(net.root_polls), net.root_alerts,
               static_cast<long long>(net.escalations),
               static_cast<long long>(net.summaries),
               static_cast<long long>(net.subset_polls), net.run_seconds);
  std::fclose(f);
}

void run() {
  const bool quick = bench::quick();
  obs::set_global_trace_enabled(false);

  // (monitors, shards) ladder. Warmup is the untimed AIMD climb to Im; the
  // timed window holds timed/hot_every hot-block violation events.
  struct Size {
    std::size_t monitors;
    std::size_t shards;
  };
  std::vector<Size> sizes = {{10000, 8}, {100000, 32}, {1000000, 64}};
  Tick max_interval = 128;
  Tick warmup = 8600;  // AIMD climb to Im takes ~Im^2/2 ticks at patience 1
  Tick timed = 240;
  Tick hot_every = 30;
  Tick hot_window = 6;
  std::size_t hot_block = 64;
  std::size_t identity_monitors = 10000;
  if (quick) {
    sizes = {{2000, 8}, {10000, 16}};
    max_interval = 32;
    warmup = 700;
    timed = 160;
    hot_every = 20;
    hot_window = 4;
    hot_block = 16;
    identity_monitors = 1000;
  }

  bench::print_header(
      "Shard — two-tier coordination: subset polls contain local violations",
      "Section II-A one level up: Σ T_s = T, all subsets quiet ⇒ no global "
      "violation");
  std::printf(
      "quiet fleet pinned at Im=%lld; a %zu-monitor hot block trips local "
      "violations every %lld ticks. Flat answers each with an n-sample "
      "global poll, the shard tier with an n/S-sample subset poll.\n\n",
      static_cast<long long>(max_interval), hot_block,
      static_cast<long long>(hot_every));

  // Part 2 first (cheap): the S == 1 identity the tiers are built around.
  FleetShape identity_shape;
  identity_shape.monitors = identity_monitors;
  identity_shape.shards = 1;
  identity_shape.warmup = warmup;
  identity_shape.timed = timed;
  identity_shape.max_interval = max_interval;
  identity_shape.hot_every = hot_every;
  identity_shape.hot_window = hot_window;
  identity_shape.hot_block = hot_block;
  const auto identity_flat = run_flat(identity_shape);
  const auto identity_sharded = run_sharded(identity_shape);
  const bool identity = same_outcome(identity_flat, identity_sharded);
  if (!identity) {
    std::fprintf(stderr,
                 "bench shard: shards=1 diverged from the flat coordinator "
                 "at %zu monitors (identity violation)\n",
                 identity_monitors);
    std::exit(1);
  }
  std::printf("shards=1 identity at %zu monitors: ops/cost/polls/metrics "
              "all equal the flat coordinator\n\n",
              identity_monitors);

  bench::print_row({"monitors", "shards", "flat tk/s", "shard tk/s",
                    "speedup", "ops ratio"});
  std::vector<ScaleRow> rows;
  for (const auto& size : sizes) {
    FleetShape shape;
    shape.monitors = size.monitors;
    shape.shards = size.shards;
    shape.warmup = warmup;
    shape.timed = timed;
    shape.max_interval = max_interval;
    shape.hot_every = hot_every;
    shape.hot_window = hot_window;
    shape.hot_block = hot_block;

    ScaleRow row;
    row.monitors = size.monitors;
    row.shards = size.shards;
    row.flat = run_flat(shape);
    row.sharded = run_sharded(shape);
    if (row.sharded.escalations != 0) {
      std::fprintf(stderr,
                   "bench shard: unexpected escalation at %zu monitors — "
                   "the hot block leaked past T_s\n",
                   size.monitors);
      std::exit(1);
    }
    rows.push_back(row);
    bench::print_row({std::to_string(size.monitors),
                      std::to_string(size.shards),
                      bench::fmt(row.flat.ticks_per_sec(), 0),
                      bench::fmt(row.sharded.ticks_per_sec(), 0),
                      bench::fmt(row.speedup(), 2) + "x",
                      bench::fmt(row.ops_ratio(), 2) + "x"});
  }
  std::printf(
      "\n(speedup: sharded vs flat wall-clock over the hot window; ops "
      "ratio: flat/sharded sampling ops — the subset-poll containment. "
      "Detection is untouched: the hot block stays under T_s, no global "
      "violation either way.)\n\n");

  const std::size_t net_shards = 3;
  const std::size_t net_per_shard = 4;
  const Tick net_ticks = quick ? 300 : 400;
  const auto net = run_net_fleet(net_shards, net_per_shard, net_ticks);
  std::printf("loopback fleet: root + %zu aggregators + %zu monitors over "
              "%lld ticks in %.2f s\n",
              net.shards, net.monitors, static_cast<long long>(net_ticks),
              net.run_seconds);
  std::printf("  subset polls %lld, escalations %lld, summaries %lld, "
              "root polls %lld, root alerts %zu\n",
              static_cast<long long>(net.subset_polls),
              static_cast<long long>(net.escalations),
              static_cast<long long>(net.summaries),
              static_cast<long long>(net.root_polls), net.root_alerts);
  if (net.root_alerts == 0 || net.escalations == 0) {
    std::fprintf(stderr,
                 "bench shard: loopback fleet produced no escalation/alert "
                 "(two-tier detection path broken)\n");
    std::exit(1);
  }

  write_shard_json(quick, identity, rows, net);
  std::printf("\n-> BENCH_shard.json\n");
  obs::set_global_trace_enabled(true);
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
