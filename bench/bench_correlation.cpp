// Extension — multi-task state-correlation scheduling (paper Section II-B;
// the third Volley technique, reconstructed — see DESIGN.md).
// Scenario from the paper's motivating example: response-time monitoring
// (cheap log parsing) is a necessary-condition indicator for DDoS traffic
// monitoring (expensive packet capture + DPI). The scheduler learns the
// correlation, rests the expensive task at its maximum interval, and wakes
// it when the cheap task's state runs hot.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "sim/runner.h"

namespace volley {
namespace {

void run() {
  const Tick ticks = 40000;
  Rng rng(161);

  // Shared load process: calm baseline with attack windows during which
  // both response time and traffic asymmetry surge (a successful DDoS
  // slows responses — the paper's necessary-condition argument).
  TimeSeries response(static_cast<std::size_t>(ticks));
  TimeSeries rho(static_cast<std::size_t>(ticks));
  Tick attack_until = 0;
  Tick next_attack = 6000;
  for (Tick t = 0; t < ticks; ++t) {
    if (t == next_attack) {
      attack_until = t + 300;
      next_attack = t + 6000 + static_cast<Tick>(rng.uniform(0, 2000));
    }
    const bool attack = t < attack_until;
    const double load = attack ? 8.0 : 1.0 + 0.3 * std::sin(t * 0.001);
    response[static_cast<std::size_t>(t)] =
        20.0 * load + rng.normal(0.0, 1.5);
    // Benign rho is noisy (bursty benign traffic keeps the DPI task's
    // delta sigma high), so Volley's single-task adaptation alone cannot
    // rest this monitor — exactly the case correlation scheduling targets.
    rho[static_cast<std::size_t>(t)] =
        (attack ? 400.0 : 0.0) + rng.normal(0.0, 40.0);
  }

  std::vector<CorrelatedTask> tasks(2);
  tasks[0].spec.global_threshold =
      response.threshold_for_selectivity(1.0);
  tasks[0].spec.error_allowance = 0.02;
  tasks[0].spec.max_interval = 20;
  tasks[0].series = response;
  tasks[0].cost_per_sample = 1.0;  // parsing recent logs is cheap

  tasks[1].spec.global_threshold = rho.threshold_for_selectivity(1.0);
  tasks[1].spec.error_allowance = 0.02;
  tasks[1].spec.max_interval = 20;
  tasks[1].series = rho;
  tasks[1].cost_per_sample = 25.0;  // packet capture + DPI is expensive

  // The correlation window must span at least one attack (they are ~6-8k
  // ticks apart), otherwise benign-time noise shows no relationship.
  CorrelationScheduler::Options sched;
  sched.history_window = 10000;
  sched.plan_period = 4000;
  sched.min_history = 8000;
  sched.min_correlation = 0.7;
  sched.trigger_ratio = 0.6;
  sched.cooldown = 400;

  const auto gated = run_correlated_group(tasks, sched, true);
  const auto ungated = run_correlated_group(tasks, sched, false);

  bench::print_header(
      "Extension — state-correlation scheduling (response time gates DDoS "
      "task)",
      "Section II-B: sample the expensive task densely only when its "
      "correlated cheap indicator suggests violations");

  bench::print_row({"scheme", "resp ops", "ddos ops", "weighted",
                    "ddos miss"});
  auto row = [&](const char* name, const CorrelatedGroupResult& res) {
    bench::print_row(
        {name, std::to_string(res.per_task[0].total_ops()),
         std::to_string(res.per_task[1].total_ops()),
         bench::fmt(res.total_weighted_cost(tasks), 0),
         bench::fmt_pct(res.per_task[1].episode_miss_rate(), 1)});
  };
  row("independent", ungated);
  row("correlated", gated);

  if (!gated.final_plan.empty()) {
    const auto& edge = gated.final_plan.front();
    std::printf("\nlearned plan: task %zu gates task %zu "
                "(corr=%.2f, lag=%d)\n",
                edge.leader, edge.follower, edge.corr, edge.lag);
  } else {
    std::printf("\nno correlation edge learned (unexpected)\n");
  }
  std::printf("weighted = ops x per-task sampling cost; DDoS episodes must "
              "still be detected via the wake-up trigger\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
