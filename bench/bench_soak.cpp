// Robustness — scenario-engine soak throughput and replay cost.
// The scenario engine (src/scenario) turns a JSON document into a composed
// workload, a fault schedule, and control-plane churn; the soak runner
// executes it and judges per-phase invariants. This bench measures what
// that machinery costs: ticks/sec of the sim-mode soak loop across run
// lengths and monitor counts, and the price of the byte-identical replay
// check (a second full run plus report comparison) that the CI smoke job
// and `volley_soak replay_check=1` pay.
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench/bench_util.h"
#include "scenario/scenario.h"
#include "scenario/soak.h"

namespace volley::scenario {
namespace {

// A fault-storm-shaped scenario embedded inline so the bench has no file
// dependencies; ticks are patched per measurement point.
constexpr const char* kScenarioTemplate = R"({
  "name": "bench-soak", "seed": 11, "monitors": %zu, "ticks": %lld,
  "task": {"threshold_selectivity": 5.0, "error_allowance": 0.02,
           "max_interval": 16, "updating_period": 500},
  "workload": {
    "base": {"mean": 0.5, "theta": 0.05, "sigma": 0.05, "lo": 0.0, "hi": 2.0},
    "layers": [
      {"kind": "diurnal", "period": 2000, "depth": 0.5},
      {"kind": "burst", "mean_gap": 700, "ramp": 12, "plateau": 24,
       "decay": 18, "peak_lo": 0.5, "peak_hi": 1.0, "scale": 1.5}
    ]
  },
  "faults": [
    {"profile": "flaky-link", "start": 1000, "end": 2000},
    {"profile": "slow-drip", "start": 2500, "end": 3500}
  ],
  "churn": {"random": {"arrivals": 3, "hold_min": 400, "hold_max": 1200,
                       "first_task": 100}}
})";

Scenario make_scenario(std::size_t monitors, Tick ticks) {
  char buf[2048];
  std::snprintf(buf, sizeof(buf), kScenarioTemplate, monitors,
                static_cast<long long>(ticks));
  return Scenario::from_json_text(buf);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void run() {
  const bool quick = std::getenv("VOLLEY_BENCH_QUICK") != nullptr;

  bench::print_header(
      "Scenario soak — sim loop throughput and replay cost",
      "harness overhead only (no paper figure): soak ticks/sec should stay "
      "within ~2x of the plain fault-sim loop; replay doubles the cost");

  bench::print_row(
      {"monitors x ticks", "run ms", "Mticks/s", "replay ms", "identical"});

  struct Point {
    std::size_t monitors;
    Tick ticks;
  };
  std::vector<Point> grid{{4, 20000}, {8, 20000}, {16, 20000}, {8, 80000}};
  if (quick) grid = {{4, 4000}, {8, 4000}};

  for (const auto& point : grid) {
    const Scenario scenario = make_scenario(point.monitors, point.ticks);

    auto start = std::chrono::steady_clock::now();
    const SoakReport first = run_scenario_sim(scenario, {});
    const double run_s = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const SoakReport second = run_scenario_sim(scenario, {});
    const bool identical = first.to_json() == second.to_json();
    const double replay_s = seconds_since(start);
    if (!identical) {
      throw std::runtime_error("soak replay diverged for seed " +
                               std::to_string(scenario.seed));
    }

    const double monitor_ticks =
        static_cast<double>(point.monitors) *
        static_cast<double>(point.ticks);
    bench::print_row(
        {std::to_string(point.monitors) + " x " +
             std::to_string(point.ticks),
         bench::fmt(1e3 * run_s, 1), bench::fmt(monitor_ticks / run_s / 1e6, 2),
         bench::fmt(1e3 * replay_s, 1), identical ? "yes" : "NO"});
  }

  std::printf("\nreplay check: every row re-ran its scenario and compared "
              "SoakReport::to_json byte-for-byte.\n");
}

}  // namespace
}  // namespace volley::scenario

int main() {
  volley::scenario::run();
  return 0;
}
