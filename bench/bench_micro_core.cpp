// Microbenchmarks backing the paper's claim that violation-likelihood
// estimation adds negligible overhead compared to sampling itself
// (Section III-B "cost of the dynamic sampling algorithm"). google-benchmark
// binary: reports ns/op for the estimator, the full sampler step, the online
// statistics update, the coordinator's allocation step, the obs/
// instrumentation primitives (which ride on every one of the above, so
// their cost must stay orders of magnitude below a sampling operation), and
// the EventQueue hot path old vs. new (DESIGN.md §10) with a global
// allocation counter proving the schedule/run cycle is allocation-free.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/adaptive_sampler.h"
#include "core/error_allocation.h"
#include "core/likelihood.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"
#include "sim/event_queue.h"
#include "stats/online_stats.h"

// --- global allocation counter ----------------------------------------
// Every route into the heap bumps g_heap_allocs; the EventQueue benches
// report allocs/op and hard-assert that the steady-state schedule/run
// cycle of the new queue performs none.

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// noinline: keeps GCC from inlining these into callers and then warning
// -Wmismatched-new-delete about the (matched) malloc/free pair inside.
#if defined(__GNUC__)
#define VOLLEY_BENCH_NOINLINE __attribute__((noinline))
#else
#define VOLLEY_BENCH_NOINLINE
#endif

VOLLEY_BENCH_NOINLINE void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
VOLLEY_BENCH_NOINLINE void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
VOLLEY_BENCH_NOINLINE void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0)
    throw std::bad_alloc();
  return p;
}
VOLLEY_BENCH_NOINLINE void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
VOLLEY_BENCH_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
VOLLEY_BENCH_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
VOLLEY_BENCH_NOINLINE void operator delete(void* p, std::size_t) noexcept { std::free(p); }
VOLLEY_BENCH_NOINLINE void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
VOLLEY_BENCH_NOINLINE void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
VOLLEY_BENCH_NOINLINE void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
VOLLEY_BENCH_NOINLINE void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
VOLLEY_BENCH_NOINLINE void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace volley {
namespace {

void BM_OnlineStatsAdd(benchmark::State& state) {
  OnlineStats stats;
  double x = 0.123;
  for (auto _ : state) {
    stats.add(x);
    x += 1e-9;
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_OnlineStatsAdd);

void BM_EstimatorObserve(benchmark::State& state) {
  ViolationLikelihoodEstimator est;
  Rng rng(1);
  double v = 0.0;
  for (auto _ : state) {
    v += rng.normal(0.0, 1.0);
    est.observe(v, 1);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_EstimatorObserve);

void BM_BetaBound(benchmark::State& state) {
  const Tick interval = state.range(0);
  ViolationLikelihoodEstimator est;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) est.observe(rng.normal(0.0, 1.0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.beta_bound(50.0, interval));
  }
}
BENCHMARK(BM_BetaBound)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(40)->Arg(64);

void BM_SamplerObserve(benchmark::State& state) {
  AdaptiveSamplerOptions options;
  options.error_allowance = 0.01;
  options.max_interval = 40;
  AdaptiveSampler sampler(options, 50.0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.observe(rng.normal(0.0, 1.0), 1));
  }
}
BENCHMARK(BM_SamplerObserve);

void BM_AdaptiveAllocation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AdaptiveAllocation allocator;
  std::vector<double> current(n, 0.01 / static_cast<double>(n));
  std::vector<CoordStats> stats(n);
  Rng rng(4);
  for (auto& s : stats) {
    s.avg_gain = rng.uniform(0.0, 0.5);
    s.avg_allowance = rng.uniform(1e-4, 0.01);
    s.observations = 100;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(0.01, current, stats));
  }
}
BENCHMARK(BM_AdaptiveAllocation)->Arg(2)->Arg(10)->Arg(100);

void BM_CounterInc(benchmark::State& state) {
  // The cached-handle pattern every instrumentation point uses: registration
  // once, then one relaxed atomic add per event.
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench_events_total");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench_interval_ticks", 0.0, 64.0, 64);
  double x = 0.0;
  for (auto _ : state) {
    hist.observe(x);
    x += 0.37;
    if (x >= 64.0) x = 0.0;
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceRecord(benchmark::State& state) {
  obs::TraceSink sink;  // default 4096-event ring, steady-state overwrite
  Tick t = 0;
  for (auto _ : state) {
    sink.record(obs::TraceKind::kSampleTaken, t++, 1, 0.5);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_TraceRecord);

void BM_ThreadPoolSubmit(benchmark::State& state) {
  // Round-trip cost of one submitted task: the floor on how fine-grained a
  // sweep job can be before dispatch overhead dominates. Full-day runs are
  // milliseconds each, so this must stay microseconds.
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pool.submit([] {}).get();
  }
}
BENCHMARK(BM_ThreadPoolSubmit)->Arg(1)->Arg(4);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  // Per-batch overhead of parallel_for with trivial bodies: what sim::sweep
  // pays on top of the runs themselves for one figure-grid fan-out.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(4);
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(n, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(16)->Arg(256);

void BM_ScopedRegistryRebind(benchmark::State& state) {
  // Install + restore of a run-scoped registry plus one cached-handle
  // re-resolution — the fixed per-run cost of metrics scoping.
  obs::MetricsRegistry run_registry;
  for (auto _ : state) {
    obs::ScopedMetricsRegistry scope(run_registry);
    benchmark::DoNotOptimize(&obs::metrics());
  }
}
BENCHMARK(BM_ScopedRegistryRebind);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(800, 1.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

// --- EventQueue hot path: old vs. new (DESIGN.md §10) -----------------

// The pre-rewrite EventQueue, embedded verbatim as the A/B baseline:
// std::priority_queue of {when, seq, id, std::function} plus an
// unordered_set for lazy cancellation. A Simulation::schedule_tick-sized
// capture (24 bytes: [this, &task, when]) exceeds libstdc++'s
// std::function small buffer, so every schedule_at here heap-allocates
// the callback and an unordered_set node.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  std::uint64_t schedule_at(SimTime when, Callback fn) {
    const std::uint64_t id = next_id_++;
    heap_.push(Event{when, next_seq_++, id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  void cancel(std::uint64_t id) { live_.erase(id); }

  bool step() {
    Event ev;
    if (!pop_runnable(ev)) return false;
    live_.erase(ev.id);
    now_ = ev.when;
    ev.fn();
    return true;
  }

  std::uint64_t run_until(SimTime horizon) {
    std::uint64_t executed = 0;
    Event ev;
    while (pop_runnable(ev)) {
      if (ev.when > horizon) {
        heap_.push(Event{ev.when, ev.seq, ev.id, std::move(ev.fn)});
        break;
      }
      live_.erase(ev.id);
      now_ = ev.when;
      ev.fn();
      ++executed;
    }
    now_ = std::max(now_, horizon);
    return executed;
  }

  SimTime now() const { return now_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    Callback fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool pop_runnable(Event& out) {
    while (!heap_.empty()) {
      Event& top = const_cast<Event&>(heap_.top());
      Event ev{top.when, top.seq, top.id, std::move(top.fn)};
      heap_.pop();
      if (live_.find(ev.id) == live_.end()) continue;  // cancelled
      out = std::move(ev);
      return true;
    }
    return false;
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> live_;
  SimTime now_{0.0};
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
};

constexpr std::size_t kEventBatch = 4096;

// One Simulation::schedule_tick-shaped cycle: schedule a single event
// whose capture matches simulation.cpp's [this, &task, when] (24 bytes —
// two pointers plus a SimTime), then run it.
template <typename Queue>
void schedule_run_cycle(Queue& q, std::uint64_t& sink) {
  const SimTime when = q.now() + 1.0;
  q.schedule_at(when, [&q, &sink, when] {
    benchmark::DoNotOptimize(when);
    ++sink;
  });
  q.step();
}

void BM_EventQueueScheduleRun(benchmark::State& state) {
  EventQueue q;
  std::uint64_t sink = 0;
  // Warm the record heap and callback slot slab to steady state.
  for (int i = 0; i < 1024; ++i) schedule_run_cycle(q, sink);
  // Acceptance gate, not just a report: the steady-state schedule/run
  // cycle must never touch the heap (the 24-byte capture fits the inline
  // callback buffer, and a warm queue reuses its freed slot).
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 4096; ++i) schedule_run_cycle(q, sink);
  const std::uint64_t seen =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  if (seen != 0) {
    std::fprintf(stderr,
                 "BM_EventQueueScheduleRun: expected 0 steady-state heap "
                 "allocations over 4096 schedule/run cycles, saw %llu\n",
                 static_cast<unsigned long long>(seen));
    std::exit(1);
  }
  const std::uint64_t start = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    schedule_run_cycle(q, sink);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          start),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_LegacyEventQueueScheduleRun(benchmark::State& state) {
  LegacyEventQueue q;
  std::uint64_t sink = 0;
  for (int i = 0; i < 1024; ++i) schedule_run_cycle(q, sink);
  const std::uint64_t start = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    schedule_run_cycle(q, sink);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          start),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_LegacyEventQueueScheduleRun);

// Schedule-then-cancel churn, the sweep engine's restart pattern. Each
// batch drains past the batch horizon so the legacy queue pays its lazy
// cancellation debt (dead heap nodes popped later) inside the measured
// region, keeping the comparison fair.
template <typename Queue>
void schedule_cancel_batches(benchmark::State& state) {
  Queue q;
  std::uint64_t sink = 0;
  std::vector<std::uint64_t> ids(kEventBatch);
  const std::uint64_t start = g_heap_allocs.load(std::memory_order_relaxed);
  while (state.KeepRunningBatch(static_cast<benchmark::IterationCount>(
      kEventBatch))) {
    for (std::size_t i = 0; i < kEventBatch; ++i) {
      const SimTime when = q.now() + 1.0;
      ids[i] = q.schedule_at(when, [&q, &sink, when] {
        benchmark::DoNotOptimize(when);
        ++sink;
      });
    }
    for (const std::uint64_t id : ids) q.cancel(id);
    q.run_until(q.now() + 2.0);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          start),
      benchmark::Counter::kAvgIterations);
}

void BM_EventQueueScheduleCancel(benchmark::State& state) {
  schedule_cancel_batches<EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleCancel);

void BM_LegacyEventQueueScheduleCancel(benchmark::State& state) {
  schedule_cancel_batches<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueScheduleCancel);

}  // namespace
}  // namespace volley
