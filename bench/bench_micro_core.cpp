// Microbenchmarks backing the paper's claim that violation-likelihood
// estimation adds negligible overhead compared to sampling itself
// (Section III-B "cost of the dynamic sampling algorithm"). google-benchmark
// binary: reports ns/op for the estimator, the full sampler step, the online
// statistics update, the coordinator's allocation step, and the obs/
// instrumentation primitives (which ride on every one of the above, so
// their cost must stay orders of magnitude below a sampling operation).
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/adaptive_sampler.h"
#include "core/error_allocation.h"
#include "core/likelihood.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"
#include "stats/online_stats.h"

namespace volley {
namespace {

void BM_OnlineStatsAdd(benchmark::State& state) {
  OnlineStats stats;
  double x = 0.123;
  for (auto _ : state) {
    stats.add(x);
    x += 1e-9;
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_OnlineStatsAdd);

void BM_EstimatorObserve(benchmark::State& state) {
  ViolationLikelihoodEstimator est;
  Rng rng(1);
  double v = 0.0;
  for (auto _ : state) {
    v += rng.normal(0.0, 1.0);
    est.observe(v, 1);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_EstimatorObserve);

void BM_BetaBound(benchmark::State& state) {
  const Tick interval = state.range(0);
  ViolationLikelihoodEstimator est;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) est.observe(rng.normal(0.0, 1.0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.beta_bound(50.0, interval));
  }
}
BENCHMARK(BM_BetaBound)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(40)->Arg(64);

void BM_SamplerObserve(benchmark::State& state) {
  AdaptiveSamplerOptions options;
  options.error_allowance = 0.01;
  options.max_interval = 40;
  AdaptiveSampler sampler(options, 50.0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.observe(rng.normal(0.0, 1.0), 1));
  }
}
BENCHMARK(BM_SamplerObserve);

void BM_AdaptiveAllocation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AdaptiveAllocation allocator;
  std::vector<double> current(n, 0.01 / static_cast<double>(n));
  std::vector<CoordStats> stats(n);
  Rng rng(4);
  for (auto& s : stats) {
    s.avg_gain = rng.uniform(0.0, 0.5);
    s.avg_allowance = rng.uniform(1e-4, 0.01);
    s.observations = 100;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(0.01, current, stats));
  }
}
BENCHMARK(BM_AdaptiveAllocation)->Arg(2)->Arg(10)->Arg(100);

void BM_CounterInc(benchmark::State& state) {
  // The cached-handle pattern every instrumentation point uses: registration
  // once, then one relaxed atomic add per event.
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench_events_total");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench_interval_ticks", 0.0, 64.0, 64);
  double x = 0.0;
  for (auto _ : state) {
    hist.observe(x);
    x += 0.37;
    if (x >= 64.0) x = 0.0;
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceRecord(benchmark::State& state) {
  obs::TraceSink sink;  // default 4096-event ring, steady-state overwrite
  Tick t = 0;
  for (auto _ : state) {
    sink.record(obs::TraceKind::kSampleTaken, t++, 1, 0.5);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_TraceRecord);

void BM_ThreadPoolSubmit(benchmark::State& state) {
  // Round-trip cost of one submitted task: the floor on how fine-grained a
  // sweep job can be before dispatch overhead dominates. Full-day runs are
  // milliseconds each, so this must stay microseconds.
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pool.submit([] {}).get();
  }
}
BENCHMARK(BM_ThreadPoolSubmit)->Arg(1)->Arg(4);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  // Per-batch overhead of parallel_for with trivial bodies: what sim::sweep
  // pays on top of the runs themselves for one figure-grid fan-out.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(4);
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(n, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(16)->Arg(256);

void BM_ScopedRegistryRebind(benchmark::State& state) {
  // Install + restore of a run-scoped registry plus one cached-handle
  // re-resolution — the fixed per-run cost of metrics scoping.
  obs::MetricsRegistry run_registry;
  for (auto _ : state) {
    obs::ScopedMetricsRegistry scope(run_registry);
    benchmark::DoNotOptimize(&obs::metrics());
  }
}
BENCHMARK(BM_ScopedRegistryRebind);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(800, 1.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace volley
