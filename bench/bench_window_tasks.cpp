// Extension — aggregation-time-window tasks (the paper's future work,
// Section VII). A task alerting on a W-tick moving average monitors a
// smoother stream: the per-tick delta shrinks ~1/W for white noise, so at
// the same error allowance Volley sustains far longer intervals. This
// bench sweeps the window size on a system-metric task and reports the
// sampling ratio and achieved accuracy for each aggregate kind.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/window_aggregate.h"
#include "sim/runner.h"
#include "tasks/system_task.h"

namespace volley {
namespace {

const char* kind_name(WindowAggregate kind) {
  switch (kind) {
    case WindowAggregate::kAverage: return "avg";
    case WindowAggregate::kSum: return "sum";
    case WindowAggregate::kMax: return "max";
  }
  return "?";
}

void run() {
  SysMetricsOptions options;
  options.nodes = 4;
  options.ticks = 17280;
  options.ticks_per_day = 17280;
  options.diurnal_phase = 8640;
  options.seed = 171;
  SysMetricsGenerator generator(options);
  const std::size_t metrics[] = {0, 16, 30, 46};  // one per family

  bench::print_header(
      "Extension — tasks with aggregation time window (paper future work)",
      "windowed aggregates smooth the monitored stream; intervals grow, "
      "cost falls, accuracy is unchanged (err = 0.01, k = 1%)");

  bench::print_row({"window/kind", "ratio", "ep.miss"});
  for (auto kind : {WindowAggregate::kAverage, WindowAggregate::kMax}) {
    for (Tick window : {1, 4, 12, 36}) {
      double ratio_sum = 0.0, miss_sum = 0.0;
      int n = 0;
      for (std::size_t node = 0; node < options.nodes; ++node) {
        for (std::size_t metric : metrics) {
          auto task = make_system_task(generator, node, metric, 1.0, 0.01);
          task.spec.max_interval = 40;
          task.spec.estimator.stats_window = 720;
          TimeSeries stream = window == 1
                                  ? task.series
                                  : window_transform(task.series, window,
                                                     kind);
          task.spec.global_threshold =
              stream.threshold_for_selectivity(1.0);
          const auto r = run_volley_single(task.spec, stream);
          ratio_sum += r.sampling_ratio();
          miss_sum += r.episode_miss_rate();
          ++n;
        }
      }
      bench::print_row(
          {std::string(kind_name(kind)) + " W=" + std::to_string(window),
           bench::fmt(ratio_sum / n, 3), bench::fmt_pct(miss_sum / n, 2)});
    }
  }
  std::printf("\n(W=1 is the plain instantaneous task; larger aggregation "
              "windows are strictly cheaper to monitor)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
