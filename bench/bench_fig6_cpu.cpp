// Figure 6 — Dom0 CPU utilization of network-level monitoring vs error
// allowance (box plots in the paper; we print the five-number summary).
// err = 0 degenerates to periodic sampling at Id = 15 s and must land in
// the paper's measured 20-34% band; growing err must cut the median by at
// least half, down toward ~5%.
//
// The non-zero err rows run through the timed sweep harness (the err = 0
// row is synthetic — one op per tick — and needs no simulation). The k = 1
// threshold and ground truth per VM are shared across every err row.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cost_model.h"
#include "sim/datacenter.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "stats/quantile.h"
#include "tasks/network_task.h"

namespace volley {
namespace {

void run() {
  // One physical host of the paper's testbed: 40 VMs, each with a DDoS
  // monitoring task in Dom0. Traffic volumes at testbed scale (the paper's
  // DPI cost measurements were taken at full per-server load).
  Datacenter datacenter;
  NetworkWorkloadOptions options;
  options.netflow.vms = datacenter.options().vms_per_host;
  options.netflow.ticks = 5760;  // 1 day at 15 s
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 2880;
  options.netflow.diurnal_depth = 0.5;
  options.netflow.mean_flows_per_tick = 290.0;  // ~2.9k packets per window
  options.netflow.seed = 121;
  options.attack_prototype.peak_syn_rate = 20000.0;
  options.attacks_per_vm = 2;
  options.poisson_attack_counts = false;  // every VM's threshold at attack
                                          // scale (measured hosts were all
                                          // under active monitoring load)
  options.seed = 123;
  NetworkWorkload workload(options);
  const auto traffic = workload.generate_traffic();

  Dom0CostModel model;

  std::vector<double> errs = {0.0, 0.002, 0.004, 0.008, 0.016, 0.032};
  if (bench::quick()) errs = {0.0, 0.008};

  // Per-VM spec and ground truth at k = 1, shared across err rows.
  struct Variant {
    TaskSpec spec;
    GroundTruth truth;
  };
  std::vector<Variant> variants;
  variants.reserve(traffic.size());
  for (const auto& vm : traffic) {
    VmTraffic copy;
    copy.rho = vm.rho;
    copy.in_packets = vm.in_packets;
    auto task = NetworkWorkload::make_task(std::move(copy), 1.0, errs.back());
    task.spec.max_interval = 40;
    task.spec.estimator.stats_window = 240;
    variants.push_back(
        {task.spec, GroundTruth::from_series(vm.rho, task.threshold)});
  }

  std::vector<sim::SweepCell> cells;
  for (double err : errs) {
    if (err == 0.0) continue;  // synthetic periodic row, no simulation
    for (std::size_t vmi = 0; vmi < traffic.size(); ++vmi) {
      sim::SweepCell cell;
      cell.spec = variants[vmi].spec;
      cell.spec.error_allowance = err;
      cell.series = &traffic[vmi].rho;
      cell.truth = &variants[vmi].truth;
      cell.run_options.record_ops = true;
      cells.push_back(cell);
    }
  }

  bench::SweepTiming timing;
  const auto results = bench::timed_sweep("fig6_cpu", cells, &timing);

  bench::print_header(
      "Figure 6 — Dom0 CPU utilization vs error allowance (one host, 40 VMs)",
      "err=0 (periodic @ 15 s): 20-34% CPU; rising err cuts it by >= half, "
      "down toward ~5% (paper Fig. 6)");
  std::printf("cost model: %.0f ms fixed + %.1f us/packet per op, "
              "15 s window\n\n",
              model.options().fixed_cost_seconds * 1e3,
              model.options().per_packet_cost_seconds * 1e6);

  bench::print_row({"err", "min", "q1", "median", "q3", "max"});

  std::vector<TimeSeries> packets;
  packets.reserve(traffic.size());
  for (const auto& vm : traffic) packets.push_back(vm.in_packets);

  std::size_t idx = 0;
  for (double err : errs) {
    std::vector<std::vector<Tick>> op_ticks;
    for (std::size_t vmi = 0; vmi < traffic.size(); ++vmi) {
      if (err == 0.0) {
        // Periodic reference: one op per tick.
        std::vector<Tick> all(
            static_cast<std::size_t>(traffic[vmi].rho.ticks()));
        for (Tick t = 0; t < traffic[vmi].rho.ticks(); ++t)
          all[static_cast<std::size_t>(t)] = t;
        op_ticks.push_back(std::move(all));
      } else {
        op_ticks.push_back(results[idx++].op_ticks[0]);
      }
    }
    const auto util = model.host_utilization(traffic[0].rho.ticks(),
                                             op_ticks, packets);
    const auto box = box_stats(util.values());
    bench::print_row({bench::fmt(err, 3), bench::fmt_pct(box.min),
                      bench::fmt_pct(box.q1), bench::fmt_pct(box.median),
                      bench::fmt_pct(box.q3), bench::fmt_pct(box.max)});
  }
  std::printf("\n(whiskers = min/max over per-tick Dom0 utilization)\n");
  bench::print_timing("fig6_cpu", timing);
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
