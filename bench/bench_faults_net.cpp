// Robustness of the wire runtime — the net twin of bench_faults.
// A coordinator and three MonitorNodes run a compressed-time session over
// localhost TCP twice: once directly, once through the chaos proxy
// (net/chaos_proxy.h) injecting seeded frame drops, delays, partial writes,
// and one mid-stream cut. The sustained violation must be detected in both
// runs; the fault columns show what absorbed the injected failures —
// stale-poll fallbacks on the coordinator, reconnects on the monitors.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/metric_source.h"
#include "net/chaos_proxy.h"
#include "net/coordinator_node.h"
#include "net/monitor_node.h"
#include "sim/faults.h"

namespace volley {
namespace {

struct NetRunResult {
  std::int64_t polls{0};
  std::size_t alerts{0};
  net::NetFaultStats faults;
  std::int64_t monitor_reconnects{0};
  std::int64_t degraded_ticks{0};
  net::ChaosStats chaos;
};

NetRunResult run_session(const NetFaultPlan* plan) {
  constexpr Tick kTicks = 2500;
  net::CoordinatorNodeOptions copt;
  copt.monitors = 3;
  copt.global_threshold = 10.0;
  copt.error_allowance = 0.03;
  copt.poll_timeout_ms = 100;
  copt.heartbeat_timeout_ms = 1200;
  copt.staleness_bound_ms = 5000;
  net::CoordinatorNode coordinator(copt);

  std::unique_ptr<net::ChaosProxy> proxy;
  std::uint16_t dial_port = coordinator.port();
  if (plan) {
    net::ChaosProxyOptions popt;
    popt.upstream_port = coordinator.port();
    popt.plan = *plan;
    proxy = std::make_unique<net::ChaosProxy>(popt);
    dial_port = proxy->port();
  }

  CallableSource spiky(
      [](Tick t) { return (t >= 800 && t < 2000) ? 25.0 : 0.5; }, kTicks);
  CallableSource quiet([](Tick) { return 0.5; }, kTicks);

  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (MonitorId id = 0; id < 3; ++id) {
    net::MonitorNodeOptions mopt;
    mopt.id = id;
    mopt.coordinator_port = dial_port;
    mopt.local_threshold = 10.0 / 3.0;
    mopt.ticks = kTicks;
    mopt.updating_period = 500;
    mopt.tick_micros = 300;
    mopt.heartbeat_interval_ms = 25;
    mopt.coordinator_timeout_ms = 600;
    mopt.connect_timeout_ms = 300;
    mopt.reconnect_backoff_ms = 20;
    mopt.reconnect_backoff_max_ms = 100;
    nodes.push_back(std::make_unique<net::MonitorNode>(
        mopt, id == 0 ? static_cast<const MetricSource&>(spiky) : quiet));
  }

  std::thread coord_thread([&coordinator] { coordinator.run(); });
  std::thread proxy_thread;
  if (proxy) proxy_thread = std::thread([&proxy] { proxy->run(); });
  std::vector<std::thread> monitor_threads;
  for (auto& node : nodes) {
    monitor_threads.emplace_back([&node] { node->run(); });
  }
  for (auto& t : monitor_threads) t.join();
  coord_thread.join();
  if (proxy) {
    proxy->request_stop();
    proxy_thread.join();
  }

  NetRunResult result;
  result.polls = coordinator.global_polls();
  result.alerts = coordinator.alerts().size();
  result.faults = coordinator.fault_stats();
  for (const auto& node : nodes) {
    result.monitor_reconnects += node->reconnects();
    result.degraded_ticks += node->degraded_ticks();
  }
  if (proxy) result.chaos = proxy->stats();
  return result;
}

void run() {
  bench::print_header(
      "Wire-runtime robustness — chaos proxy vs clean TCP (companion "
      "work [22] concern)",
      "detection survives frame loss, delays, partial writes, and a "
      "mid-stream cut; stale polls and reconnects absorb the faults");

  bench::print_row({"run", "polls", "alerts", "stale", "reconn",
                    "degraded", "dead", "reclaims"});
  const auto report = [](const char* name, const NetRunResult& r) {
    bench::print_row({name, std::to_string(r.polls),
                      std::to_string(r.alerts),
                      std::to_string(r.faults.stale_polls),
                      std::to_string(r.monitor_reconnects),
                      std::to_string(r.degraded_ticks),
                      std::to_string(r.faults.declared_dead),
                      std::to_string(r.faults.allowance_reclaims)});
  };

  report("clean tcp", run_session(nullptr));

  NetFaultPlan plan;
  plan.message_loss.violation_report_loss = 0.2;
  plan.message_loss.poll_response_loss = 0.15;
  plan.message_loss.seed = 11;
  plan.heartbeat_loss = 0.15;
  plan.delay_prob = 0.2;
  plan.delay_ms = 10;
  plan.partial_write_prob = 0.2;
  plan.disconnect_after_frames = 200;
  plan.max_disconnects = 1;
  const auto chaotic = run_session(&plan);
  report("chaos proxy", chaotic);

  std::printf("\ninjections: %lld frames forwarded, %lld violations + %lld "
              "responses + %lld heartbeats dropped, %lld delayed, %lld "
              "partial, %lld cuts\n",
              static_cast<long long>(chaotic.chaos.forwarded_frames),
              static_cast<long long>(chaotic.chaos.dropped_violations),
              static_cast<long long>(chaotic.chaos.dropped_responses),
              static_cast<long long>(chaotic.chaos.dropped_heartbeats),
              static_cast<long long>(chaotic.chaos.delayed_frames),
              static_cast<long long>(chaotic.chaos.partial_writes),
              static_cast<long long>(chaotic.chaos.disconnects));
  std::printf("(monitor 0 violates for 1200 of 2500 compressed ticks; both "
              "runs must alert)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
