// Figure 5(b) — system-level monitoring efficiency.
// Same axes as Figure 5(a); each task watches one of the 66 OS metrics on a
// VM at Id = 5 s, thresholds at the (100-k)-th percentile.
// Paper: savings present but smaller than network monitoring, because
// system metrics jitter more (relative to range) than traffic off-peak.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "tasks/system_task.h"

namespace volley {
namespace {

void run() {
  SysMetricsOptions options;
  options.nodes = 4;
  options.ticks = 17280;  // 1 day at 5 s
  options.ticks_per_day = 17280;
  options.diurnal_phase = 8640;
  options.diurnal_depth = 0.7;
  options.sigma_load_floor = 0.15;  // calm off-peak metrics
  options.seed = 101;
  SysMetricsGenerator generator(options);

  // A representative slice of the catalog: one metric per family.
  const std::size_t metrics[] = {0,  2,  8,  16, 23, 30, 34,
                                 46, 50, 58, 61, 63};

  const double ks[] = {0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4};
  const double errs[] = {0.002, 0.004, 0.008, 0.016, 0.032};

  bench::print_header(
      "Figure 5(b) — system monitoring: sampling ratio vs err and k",
      "savings smaller than Fig. 5(a): system metrics are relatively "
      "noisier than off-peak traffic (paper Fig. 5b)");
  std::printf("workload: %zu nodes x %zu metrics, 1 day @ Id=5 s\n\n",
              options.nodes, std::size(metrics));

  std::vector<std::string> header{"err \\ k"};
  for (double k : ks) header.push_back(bench::fmt(k, 1) + "%");
  bench::print_row(header);

  for (double err : errs) {
    std::vector<std::string> row{bench::fmt(err, 3)};
    for (double k : ks) {
      double ratio_sum = 0.0;
      std::int64_t tasks = 0;
      for (std::size_t node = 0; node < options.nodes; ++node) {
        for (std::size_t metric : metrics) {
          auto task = make_system_task(generator, node, metric, k, err);
          task.spec.max_interval = 40;
          task.spec.estimator.stats_window = 720;  // 1 h at 5 s
          const auto r = run_volley_single(task.spec, task.series);
          ratio_sum += r.sampling_ratio();
          ++tasks;
        }
      }
      row.push_back(bench::fmt(ratio_sum / static_cast<double>(tasks), 3));
    }
    bench::print_row(row);
  }
  std::printf("\n(expect higher ratios than Figure 5(a) at matching cells)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
