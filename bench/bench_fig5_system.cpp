// Figure 5(b) — system-level monitoring efficiency.
// Same axes as Figure 5(a); each task watches one of the 66 OS metrics on a
// VM at Id = 5 s, thresholds at the (100-k)-th percentile.
// Paper: savings present but smaller than network monitoring, because
// system metrics jitter more (relative to range) than traffic off-peak.
//
// Runs through the timed sweep harness: each (node, metric) series is
// generated once, each (k, node, metric) threshold/ground-truth pair is
// scored once, and the err rows reuse both.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "tasks/system_task.h"

namespace volley {
namespace {

void run() {
  SysMetricsOptions options;
  options.nodes = 4;
  options.ticks = 17280;  // 1 day at 5 s
  options.ticks_per_day = 17280;
  options.diurnal_phase = 8640;
  options.diurnal_depth = 0.7;
  options.sigma_load_floor = 0.15;  // calm off-peak metrics
  options.seed = 101;
  SysMetricsGenerator generator(options);

  // A representative slice of the catalog: one metric per family.
  const std::size_t metrics[] = {0,  2,  8,  16, 23, 30, 34,
                                 46, 50, 58, 61, 63};

  std::vector<double> ks = {0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4};
  std::vector<double> errs = {0.002, 0.004, 0.008, 0.016, 0.032};
  if (bench::quick()) {
    ks = {0.4, 3.2};
    errs = {0.008};
  }

  // One generated series per (node, metric); generate_metric is
  // deterministic in its arguments, so this matches what a per-cell
  // rebuild would produce.
  std::vector<TimeSeries> series;
  series.reserve(options.nodes * std::size(metrics));
  for (std::size_t node = 0; node < options.nodes; ++node) {
    for (std::size_t metric : metrics)
      series.push_back(generator.generate_metric(node, metric));
  }

  // Per-(k, node, metric) spec and ground truth, shared across err rows.
  struct Variant {
    TaskSpec spec;
    GroundTruth truth;
  };
  std::vector<Variant> variants;
  variants.reserve(ks.size() * series.size());
  for (double k : ks) {
    std::size_t s = 0;
    for (std::size_t node = 0; node < options.nodes; ++node) {
      for (std::size_t metric : metrics) {
        auto task = make_system_task(generator, node, metric, k, errs.front());
        task.spec.max_interval = 40;
        task.spec.estimator.stats_window = 720;  // 1 h at 5 s
        variants.push_back(
            {task.spec, GroundTruth::from_series(series[s], task.threshold)});
        ++s;
      }
    }
  }

  std::vector<sim::SweepCell> cells;
  cells.reserve(errs.size() * variants.size());
  for (double err : errs) {
    std::size_t v = 0;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      for (std::size_t s = 0; s < series.size(); ++s, ++v) {
        sim::SweepCell cell;
        cell.spec = variants[v].spec;
        cell.spec.error_allowance = err;
        cell.series = &series[s];
        cell.truth = &variants[v].truth;
        cells.push_back(cell);
      }
    }
  }

  bench::SweepTiming timing;
  const auto results = bench::timed_sweep("fig5_system", cells, &timing);

  bench::print_header(
      "Figure 5(b) — system monitoring: sampling ratio vs err and k",
      "savings smaller than Fig. 5(a): system metrics are relatively "
      "noisier than off-peak traffic (paper Fig. 5b)");
  std::printf("workload: %zu nodes x %zu metrics, 1 day @ Id=5 s\n\n",
              options.nodes, std::size(metrics));

  std::vector<std::string> header{"err \\ k"};
  for (double k : ks) header.push_back(bench::fmt(k, 1) + "%");
  bench::print_row(header);

  std::size_t idx = 0;
  for (double err : errs) {
    std::vector<std::string> row{bench::fmt(err, 3)};
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      double ratio_sum = 0.0;
      std::int64_t tasks = 0;
      for (std::size_t s = 0; s < series.size(); ++s) {
        ratio_sum += results[idx++].sampling_ratio();
        ++tasks;
      }
      row.push_back(bench::fmt(ratio_sum / static_cast<double>(tasks), 3));
    }
    bench::print_row(row);
  }
  std::printf("\n(expect higher ratios than Figure 5(a) at matching cells)\n");
  bench::print_timing("fig5_system", timing);
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
