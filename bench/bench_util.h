// Shared helpers for the figure-reproduction benches: fixed-width table
// printing, and the timed sweep harness the grid benches run on. Every
// bench prints
//   (a) the paper's qualitative reference for that figure, and
//   (b) the regenerated rows/series,
// so EXPERIMENTS.md can record paper-vs-measured side by side.
//
// Grid benches execute their parameter grid through `timed_sweep`, which
// runs the whole batch twice — once serially, once across the worker pool
// (sim/sweep.h) — checks the two result sets are identical (the sweep's
// determinism guarantee, enforced on every bench run), and writes a
// `BENCH_<name>.json` timing record next to the binary's working
// directory. `VOLLEY_THREADS` sets the pool width; `VOLLEY_BENCH_QUICK=1`
// asks benches to shrink their grids to smoke-test size.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/sweep.h"

namespace volley::bench {

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Prints one row of right-aligned cells, 12 chars wide, first cell 18.
inline void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-18s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_pct(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * v);
  return buf;
}

/// True when VOLLEY_BENCH_QUICK is set (and not "0"): benches shrink their
/// grids to a smoke-test size so CI can exercise the harness in seconds.
inline bool quick() {
  const char* v = std::getenv("VOLLEY_BENCH_QUICK");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock record of one serial-vs-parallel sweep comparison.
struct SweepTiming {
  std::size_t runs{0};
  std::size_t threads{1};  // pool width of the parallel pass
  double serial_seconds{0.0};
  double parallel_seconds{0.0};

  double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

/// Writes `BENCH_<name>.json` in the working directory. One flat object so
/// CI (and EXPERIMENTS.md readers) can jq it without schema knowledge.
inline void write_bench_json(const std::string& name, const SweepTiming& t) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\"bench\":\"%s\",\"quick\":%s,\"runs\":%zu,\"threads\":%zu,"
               "\"serial_seconds\":%.6f,\"parallel_seconds\":%.6f,"
               "\"speedup\":%.3f}\n",
               name.c_str(), quick() ? "true" : "false", t.runs, t.threads,
               t.serial_seconds, t.parallel_seconds, t.speedup());
  std::fclose(f);
}

/// Field-by-field equality of two runs (doubles compared exactly: the
/// sweep's determinism guarantee is bit-identity, not tolerance).
inline bool same_result(const RunResult& a, const RunResult& b) {
  return a.ticks == b.ticks && a.monitors == b.monitors &&
         a.scheduled_ops == b.scheduled_ops && a.forced_ops == b.forced_ops &&
         a.total_cost == b.total_cost &&
         a.true_alert_ticks == b.true_alert_ticks &&
         a.detected_alert_ticks == b.detected_alert_ticks &&
         a.true_episodes == b.true_episodes &&
         a.detected_episodes == b.detected_episodes &&
         a.local_violations == b.local_violations &&
         a.global_polls == b.global_polls &&
         a.reallocations == b.reallocations && a.op_ticks == b.op_ticks &&
         a.interval_trajectory == b.interval_trajectory &&
         a.metrics_json == b.metrics_json;
}

/// Runs `cells` twice — serial loop, then the worker pool — and aborts the
/// bench if any run differs (a determinism violation is a bug, not noise).
/// Returns the results (input-ordered) plus the timing via `out`; call
/// `print_timing` after the figure table so tables stay diffable against
/// serial-era output.
inline std::vector<RunResult> timed_sweep(const std::string& name,
                                          std::span<const sim::SweepCell> cells,
                                          SweepTiming* out = nullptr) {
  sim::SweepOptions serial_options;
  serial_options.threads = 1;
  SweepTiming timing;
  timing.runs = cells.size();
  timing.threads = sim::resolve_threads({});

  double t0 = now_seconds();
  const auto serial = sim::sweep(cells, serial_options);
  timing.serial_seconds = now_seconds() - t0;

  t0 = now_seconds();
  auto parallel = sim::sweep(cells, {});
  timing.parallel_seconds = now_seconds() - t0;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!same_result(serial[i], parallel[i])) {
      std::fprintf(stderr,
                   "bench %s: parallel sweep diverged from serial at run %zu "
                   "(determinism violation)\n",
                   name.c_str(), i);
      std::exit(1);
    }
  }
  write_bench_json(name, timing);
  if (out != nullptr) *out = timing;
  return parallel;
}

inline void print_timing(const std::string& name, const SweepTiming& t) {
  std::printf(
      "\ntiming: %zu runs; serial %.2f s, parallel %.2f s on %zu threads "
      "(%.2fx) -> BENCH_%s.json\n",
      t.runs, t.serial_seconds, t.parallel_seconds, t.threads, t.speedup(),
      name.c_str());
}

}  // namespace volley::bench
