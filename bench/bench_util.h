// Shared helpers for the figure-reproduction benches: fixed-width table
// printing and common workload recipes. Every bench prints
//   (a) the paper's qualitative reference for that figure, and
//   (b) the regenerated rows/series,
// so EXPERIMENTS.md can record paper-vs-measured side by side.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace volley::bench {

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Prints one row of right-aligned cells, 12 chars wide, first cell 18.
inline void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-18s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_pct(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * v);
  return buf;
}

}  // namespace volley::bench
