// Net-runtime scale benchmark: the epoll reactor vs the legacy poll(2)
// loop, head to head in one process (DESIGN.md §12).
//
// For each fleet size N the bench boots a CoordinatorNode, joins N raw
// loopback connections (Hello + one acked Heartbeat each), and measures
// three phases per event-loop mode (options.poll_loop forces each path,
// independent of VOLLEY_POLL_LOOP):
//
//   idle   — nobody sends anything. The legacy loop turns every 20 ms and
//            rebuilds + scans an N-wide pollfd array each turn; the reactor
//            sleeps in epoll_wait (its only turns are the timer wheel's
//            ~0.5 s lap ticks while the coalesced liveness deadline is far
//            out). Reported: loop wakeups/sec and coordinator-thread CPU
//            (pthread_getcpuclockid) across the window.
//   load   — worker threads blast batched Heartbeat frames over every
//            connection and drain the acks. Reported: messages the
//            coordinator handled per second (ingress drain + batched
//            writev egress vs per-frame blocking send_all).
//   polls  — one connection reports a LocalViolation; every connection
//            answers the resulting global PollRequest. Reported: p50/p99
//            violation-to-settle latency from coordinator.poll_settle_ms().
//
// On top of the legacy-vs-reactor comparison, each fleet size also runs:
//
//   multi  — the reactor sharded across VOLLEY_NET_THREADS-style loops
//            (options.net_threads forces it): accepted sessions round-robin
//            onto worker loops, ingress arrives home as decoded batches,
//            egress leaves as one posted batch per loop. Reported as
//            multi-loop ingest speedup over the single-loop reactor.
//   uring  — the io_uring backend (options.uring forces it; skipped when the
//            kernel lacks support): poll readiness arrives via a mmap'd
//            completion ring, so a loop turn costs one io_uring_enter
//            instead of epoll_wait + per-fd syscalls. Reported as estimated
//            syscalls per ingested frame (net/io_counters.h instrumented
//            wrappers; bench workers use raw send/recv and stay invisible).
//
// A per-size identity check pins the single-loop epoll reactor to the same
// protocol outcomes as the legacy loop (same polls settled over the same
// script) — the multi-loop/io_uring work must not perturb the default path.
//
// Acceptance targets (full mode): at N = 1000, idle wakeup reduction >= 5x
// and sustained report throughput >= 2x; at N = 4000, multi-loop (>= 2
// loops) ingest >= 2x the single-loop reactor; io_uring records fewer
// syscalls per frame than epoll. VOLLEY_BENCH_QUICK=1 shrinks the fleet
// sizes and windows to smoke size. Emits BENCH_net.json (schema checked by
// the CI bench-smoke job).
#include <poll.h>
#include <pthread.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <time.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/coordinator_node.h"
#include "net/framing.h"
#include "net/io_counters.h"
#include "net/messages.h"
#include "net/reactor.h"
#include "net/socket.h"

namespace volley {
namespace {

using net::Heartbeat;
using net::HeartbeatAck;
using net::Hello;
using net::LocalViolation;
using net::Message;
using net::PollRequest;
using net::PollResponse;

struct BenchConfig {
  std::vector<std::size_t> sizes;
  std::vector<int> multi_loops;  // reactor loop counts beyond the single loop
  int idle_ms{1000};
  int load_ms{1500};
  int polls{8};
};

struct ModeResult {
  double idle_wakeups_per_sec{0.0};
  double idle_cpu_ms{0.0};
  double load_msgs_per_sec{0.0};
  double load_cpu_ms{0.0};
  double settle_p50_ms{0.0};
  double settle_p99_ms{0.0};
  double syscalls_per_frame{0.0};
  std::size_t polls_settled{0};
};

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double thread_cpu_ms(clockid_t cid) {
  timespec ts{};
  if (clock_gettime(cid, &ts) != 0) return 0.0;
  return ts.tv_sec * 1000.0 + ts.tv_nsec / 1e6;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

/// Sends the whole buffer on a nonblocking fd, parking on POLLOUT as
/// needed — the must-deliver path (poll responses, violations).
bool send_reliable(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  const auto deadline = steady_ms() + 2000.0;
  while (off < bytes.size() && steady_ms() < deadline) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return off == bytes.size();
}

// Worker phases, switched by the driving thread.
enum : int { kPhaseQuiet = 0, kPhaseLoad = 1, kPhaseRespond = 2, kPhaseExit = 3 };

struct WorkerShared {
  std::atomic<int> phase{kPhaseQuiet};
  std::atomic<std::int64_t> violations_requested{0};
  std::atomic<std::int64_t> violations_sent{0};
  std::atomic<std::int64_t> poll_responses{0};
};

/// One worker owns a contiguous slice of the fleet's connections. During
/// kPhaseLoad it streams pre-framed Heartbeat batches (finishing any
/// partially-accepted batch first so frames never tear) and drains acks;
/// during kPhaseRespond it only reads, answering PollRequests; the worker
/// holding connection 0 also emits the requested LocalViolations.
void worker_main(const std::vector<TcpConnection>* fleet,
                 std::size_t begin, std::size_t end, WorkerShared* shared,
                 std::int64_t round_base) {
  constexpr int kBatchFrames = 32;
  struct ConnState {
    FrameReader reader;
    std::vector<std::byte> batch;  // pre-framed heartbeat burst
    std::size_t batch_off{0};      // bytes of the burst already accepted
    bool batch_in_flight{false};
  };
  std::vector<ConnState> states(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    const auto one = frame_payload(
        net::encode(Message{Heartbeat{static_cast<MonitorId>(i), 1}}));
    auto& batch = states[i - begin].batch;
    for (int k = 0; k < kBatchFrames; ++k) {
      batch.insert(batch.end(), one.begin(), one.end());
    }
  }

  std::vector<std::byte> buf(65536);
  // `decode_frames` is false on the load-phase fast path: everything the
  // coordinator sends back then is a HeartbeatAck the bench only needs to
  // drain, so frames are popped (keeping the stream aligned for the poll
  // phase) but not decoded.
  const auto drain_and_respond = [&](std::size_t i, bool decode_frames) {
    const int fd = (*fleet)[i].fd();
    ConnState& st = states[i - begin];
    for (;;) {
      const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
      if (n <= 0) break;  // EAGAIN / EOF: nothing more buffered
      st.reader.feed(
          std::span<const std::byte>(buf.data(), static_cast<std::size_t>(n)));
      while (const auto payload = st.reader.next()) {
        if (!decode_frames) continue;
        const auto message =
            net::decode(std::span<const std::byte>(payload->data(),
                                                   payload->size()));
        if (!message) continue;
        if (const auto* poll = std::get_if<PollRequest>(&*message)) {
          PollResponse response{static_cast<MonitorId>(i), poll->poll_id,
                                poll->tick, 1.0, poll->task};
          send_reliable(fd, frame_payload(net::encode(Message{response})));
          shared->poll_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };

  for (;;) {
    const int phase = shared->phase.load(std::memory_order_acquire);
    if (phase == kPhaseExit) return;
    if (phase == kPhaseQuiet) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    if (phase == kPhaseLoad) {
      for (std::size_t i = begin; i < end; ++i) {
        const int fd = (*fleet)[i].fd();
        ConnState& st = states[i - begin];
        if (!st.batch_in_flight) {
          st.batch_off = 0;
          st.batch_in_flight = true;
        }
        while (st.batch_off < st.batch.size()) {
          const ssize_t n = ::send(fd, st.batch.data() + st.batch_off,
                                   st.batch.size() - st.batch_off,
                                   MSG_NOSIGNAL);
          if (n > 0) {
            st.batch_off += static_cast<std::size_t>(n);
          } else {
            break;  // EAGAIN: resume this batch next pass, no frame tear
          }
        }
        if (st.batch_off == st.batch.size()) st.batch_in_flight = false;
        drain_and_respond(i, /*decode_frames=*/false);
      }
      continue;
    }
    // kPhaseRespond: read-only duty cycle plus the violation trigger.
    if (begin == 0 && shared->violations_sent.load(std::memory_order_relaxed) <
                          shared->violations_requested.load(
                              std::memory_order_relaxed)) {
      const std::int64_t round =
          shared->violations_sent.fetch_add(1, std::memory_order_relaxed);
      const LocalViolation violation{
          0, static_cast<Tick>(round_base + round * 100), 1000.0};
      send_reliable((*fleet)[0].fd(),
                    frame_payload(net::encode(Message{violation})));
    }
    for (std::size_t i = begin; i < end; ++i) {
      drain_and_respond(i, /*decode_frames=*/true);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

/// One event-loop configuration for run_mode: the legacy loop, the reactor
/// with a given loop count, or the reactor on a forced backend.
struct ModeSpec {
  int poll_loop{0};
  int net_threads{1};
  int uring{0};  // tri-state override: 0 = epoll, 1 = io_uring
};

/// Runs one fleet size on one event-loop mode end to end.
std::optional<ModeResult> run_mode(std::size_t connections,
                                   const ModeSpec& spec,
                                   const BenchConfig& cfg) {
  net::CoordinatorNodeOptions copt;
  copt.monitors = connections;
  copt.global_threshold = 5.0;
  copt.error_allowance = 0.03;
  copt.poll_timeout_ms = 4000;
  copt.idle_timeout_ms = 600000;
  copt.heartbeat_timeout_ms = 600000;  // the fleet stays ACTIVE while quiet
  copt.staleness_bound_ms = 600000;
  copt.poll_loop = spec.poll_loop;
  copt.net_threads = spec.net_threads;
  copt.uring = spec.uring;
  net::CoordinatorNode coordinator(copt);
  std::thread coord_thread([&coordinator] { coordinator.run(); });
  clockid_t coord_cpu{};
  if (pthread_getcpuclockid(coord_thread.native_handle(), &coord_cpu) != 0) {
    std::fprintf(stderr, "bench net: pthread_getcpuclockid failed\n");
  }

  // Join the fleet: Hello + one Heartbeat per connection, then block on the
  // ack so every session is provably bound before any clock starts.
  std::vector<TcpConnection> fleet;
  fleet.reserve(connections);
  bool setup_ok = true;
  for (std::size_t i = 0; i < connections && setup_ok; ++i) {
    auto conn = TcpConnection::try_connect("127.0.0.1",
                                                coordinator.port(), 2000);
    if (!conn) {
      std::fprintf(stderr, "bench net: connect %zu failed\n", i);
      setup_ok = false;
      break;
    }
    const auto id = static_cast<MonitorId>(i);
    setup_ok = conn->send_all(frame_payload(net::encode(Message{Hello{id}}))) &&
               conn->send_all(
                   frame_payload(net::encode(Message{Heartbeat{id, 1}})));
    fleet.push_back(std::move(*conn));
  }
  std::array<std::byte, 4096> buf;
  for (std::size_t i = 0; i < fleet.size() && setup_ok; ++i) {
    FrameReader reader;
    bool acked = false;
    const auto deadline = steady_ms() + 5000.0;
    while (!acked && steady_ms() < deadline) {
      pollfd pfd{fleet[i].fd(), POLLIN, 0};
      ::poll(&pfd, 1, 100);
      const auto n = fleet[i].recv_some(buf);
      if (!n) continue;
      if (*n == 0) break;
      reader.feed(std::span<const std::byte>(buf.data(), *n));
      while (const auto payload = reader.next()) {
        const auto message = net::decode(
            std::span<const std::byte>(payload->data(), payload->size()));
        if (message && std::holds_alternative<HeartbeatAck>(*message)) {
          acked = true;
        }
      }
    }
    if (!acked) {
      std::fprintf(stderr, "bench net: no heartbeat ack on conn %zu\n", i);
      setup_ok = false;
    }
  }
  if (!setup_ok) {
    coordinator.request_stop();
    coord_thread.join();
    return std::nullopt;
  }
  for (auto& conn : fleet) conn.set_nonblocking(true);

  WorkerShared shared;
  const std::size_t worker_count = std::min<std::size_t>(
      4, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  std::vector<std::thread> workers;
  const std::size_t chunk = (connections + worker_count - 1) / worker_count;
  for (std::size_t w = 0; w < worker_count; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(connections, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back(worker_main, &fleet, begin, end, &shared,
                         static_cast<std::int64_t>(connections));
  }

  ModeResult result;

  // Phase 1: idle. Nothing moves; only the event loop's own overhead runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // settle
  const auto idle_w0 = coordinator.loop_wakeups();
  const double idle_c0 = thread_cpu_ms(coord_cpu);
  const double idle_t0 = steady_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.idle_ms));
  const double idle_dt = (steady_ms() - idle_t0) / 1000.0;
  result.idle_wakeups_per_sec =
      static_cast<double>(coordinator.loop_wakeups() - idle_w0) / idle_dt;
  result.idle_cpu_ms = thread_cpu_ms(coord_cpu) - idle_c0;

  // Phase 2: load. Workers stream heartbeat batches; count what the
  // coordinator actually handled. The io-syscall estimate is process-wide
  // but the workers bypass the instrumented wrappers (raw send/recv), so the
  // delta across the window is the coordinator side's syscall budget.
  const auto load_m0 = coordinator.messages_received();
  const auto load_s0 = net::io_syscalls_estimate();
  const double load_c0 = thread_cpu_ms(coord_cpu);
  const double load_t0 = steady_ms();
  shared.phase.store(kPhaseLoad, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.load_ms));
  shared.phase.store(kPhaseRespond, std::memory_order_release);
  const double load_dt = (steady_ms() - load_t0) / 1000.0;
  const auto load_msgs = coordinator.messages_received() - load_m0;
  const auto load_syscalls = net::io_syscalls_estimate() - load_s0;
  result.load_msgs_per_sec = static_cast<double>(load_msgs) / load_dt;
  result.load_cpu_ms = thread_cpu_ms(coord_cpu) - load_c0;
  result.syscalls_per_frame =
      load_msgs > 0 ? static_cast<double>(load_syscalls) /
                          static_cast<double>(load_msgs)
                    : 0.0;

  // Let the coordinator digest the load phase's in-flight backlog before
  // timing polls, so settle latency measures the poll, not the queue.
  {
    auto last = coordinator.messages_received();
    const auto quiesce_deadline = steady_ms() + 5000.0;
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const auto now_count = coordinator.messages_received();
      if (now_count == last || steady_ms() > quiesce_deadline) break;
      last = now_count;
    }
  }

  // Phase 3: global polls. One violation per round; the whole fleet
  // answers; settle latency comes from the coordinator's own accounting.
  for (int round = 0; round < cfg.polls; ++round) {
    const auto settled_before = coordinator.poll_settle_ms().size();
    shared.violations_requested.fetch_add(1, std::memory_order_relaxed);
    const auto deadline = steady_ms() + 8000.0;
    while (coordinator.poll_settle_ms().size() == settled_before &&
           steady_ms() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto settles = coordinator.poll_settle_ms();
  result.settle_p50_ms = percentile(settles, 50.0);
  result.settle_p99_ms = percentile(settles, 99.0);
  result.polls_settled = settles.size();
  if (settles.size() < static_cast<std::size_t>(cfg.polls)) {
    std::fprintf(stderr, "bench net: only %zu/%d polls settled (N=%zu)\n",
                 settles.size(), cfg.polls, connections);
  }

  shared.phase.store(kPhaseExit, std::memory_order_release);
  for (auto& w : workers) w.join();
  coordinator.request_stop();
  coord_thread.join();
  return result;
}

struct MultiLoopResult {
  int loops{0};
  ModeResult result;
};

struct SizeRow {
  std::size_t connections{0};
  ModeResult legacy;
  ModeResult reactor;
  std::vector<MultiLoopResult> multi;  // sharded reactor, >= 2 loops
  bool have_uring{false};
  ModeResult uring;       // io_uring backend, single loop
  bool identity_ok{true};  // single-loop epoll matched legacy outcomes

  double idle_wakeup_reduction() const {
    // +1 on both sides: an idle reactor can legitimately record zero turns.
    return (legacy.idle_wakeups_per_sec + 1.0) /
           (reactor.idle_wakeups_per_sec + 1.0);
  }
  double throughput_speedup() const {
    return legacy.load_msgs_per_sec > 0.0
               ? reactor.load_msgs_per_sec / legacy.load_msgs_per_sec
               : 0.0;
  }
  double multi_loop_speedup(int loops) const {
    for (const auto& m : multi) {
      if (m.loops == loops && reactor.load_msgs_per_sec > 0.0)
        return m.result.load_msgs_per_sec / reactor.load_msgs_per_sec;
    }
    return 0.0;
  }
  double best_multi_loop_speedup() const {
    double best = 0.0;
    for (const auto& m : multi) best = std::max(best, multi_loop_speedup(m.loops));
    return best;
  }
  double uring_syscall_ratio() const {
    // < 1.0 means io_uring needed fewer syscalls per ingested frame.
    return (have_uring && reactor.syscalls_per_frame > 0.0)
               ? uring.syscalls_per_frame / reactor.syscalls_per_frame
               : 0.0;
  }
};

void write_json(const std::vector<SizeRow>& rows, bool quick) {
  std::FILE* f = std::fopen("BENCH_net.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench net: cannot write BENCH_net.json\n");
    return;
  }
  std::fprintf(f,
               "{\"bench\":\"net\",\"quick\":%s,\"uring_supported\":%s,"
               "\"cores\":%u,\"sizes\":[",
               quick ? "true" : "false",
               net::uring_supported() ? "true" : "false",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SizeRow& row = rows[i];
    const auto mode_body = [&](const ModeResult& m) {
      std::fprintf(f,
                   "{\"idle_wakeups_per_sec\":%.3f,"
                   "\"idle_cpu_ms\":%.3f,\"load_msgs_per_sec\":%.1f,"
                   "\"load_cpu_ms\":%.3f,\"settle_p50_ms\":%.3f,"
                   "\"settle_p99_ms\":%.3f,\"syscalls_per_frame\":%.3f}",
                   m.idle_wakeups_per_sec, m.idle_cpu_ms, m.load_msgs_per_sec,
                   m.load_cpu_ms, m.settle_p50_ms, m.settle_p99_ms,
                   m.syscalls_per_frame);
    };
    const auto mode_json = [&](const char* name, const ModeResult& m) {
      std::fprintf(f, "\"%s\":", name);
      mode_body(m);
    };
    std::fprintf(f, "%s{\"connections\":%zu,", i == 0 ? "" : ",",
                 row.connections);
    mode_json("legacy", row.legacy);
    std::fprintf(f, ",");
    mode_json("reactor", row.reactor);
    std::fprintf(f, ",\"multi_loop\":[");
    for (std::size_t m = 0; m < row.multi.size(); ++m) {
      std::fprintf(f, "%s{\"loops\":%d,\"speedup_vs_single\":%.2f,\"mode\":",
                   m == 0 ? "" : ",", row.multi[m].loops,
                   row.multi_loop_speedup(row.multi[m].loops));
      mode_body(row.multi[m].result);
      std::fprintf(f, "}");
    }
    std::fprintf(f, "]");
    if (row.have_uring) {
      std::fprintf(f, ",");
      mode_json("uring", row.uring);
      std::fprintf(f, ",\"uring_syscall_ratio\":%.3f",
                   row.uring_syscall_ratio());
    }
    std::fprintf(f,
                 ",\"identity_ok\":%s,\"idle_wakeup_reduction\":%.2f,"
                 "\"throughput_speedup\":%.2f}",
                 row.identity_ok ? "true" : "false",
                 row.idle_wakeup_reduction(), row.throughput_speedup());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

int bench_main() {
  const bool quick = bench::quick();
  BenchConfig cfg;
  if (quick) {
    cfg.sizes = {64, 128};
    cfg.multi_loops = {2};
    cfg.idle_ms = 300;
    cfg.load_ms = 400;
    cfg.polls = 2;
  } else {
    cfg.sizes = {250, 1000, 4000};
    cfg.multi_loops = {2, 4};
  }

  // Each fleet size needs ~2N fds in this process (client + server side of
  // every loopback connection). Raise the soft limit to the hard limit and
  // skip sizes that still don't fit.
  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    nofile.rlim_cur = nofile.rlim_max;
    setrlimit(RLIMIT_NOFILE, &nofile);
    getrlimit(RLIMIT_NOFILE, &nofile);
  }

  const bool uring_ok = net::uring_supported();
  bench::print_header(
      "bench net scale: legacy poll(2) vs reactor (epoll / io_uring / "
      "multi-loop)",
      "DESIGN.md §12+§14 — event-driven I/O, loop sharding, ring batching");
  if (!uring_ok) {
    std::printf("  (io_uring unsupported on this kernel: uring rows "
                "skipped)\n");
  }
  bench::print_row({"connections", "mode", "idle wps", "idle cpu",
                    "msgs/sec", "sys/frame", "p50 ms", "p99 ms"});
  const auto print_mode = [&](const std::string& label,
                              const std::string& mode, const ModeResult& m) {
    bench::print_row({label, mode, bench::fmt(m.idle_wakeups_per_sec, 1),
                      bench::fmt(m.idle_cpu_ms, 1),
                      bench::fmt(m.load_msgs_per_sec, 0),
                      bench::fmt(m.syscalls_per_frame, 3),
                      bench::fmt(m.settle_p50_ms, 2),
                      bench::fmt(m.settle_p99_ms, 2)});
  };

  std::vector<SizeRow> rows;
  for (const std::size_t n : cfg.sizes) {
    if (2 * n + 64 > nofile.rlim_cur) {
      std::fprintf(stderr,
                   "bench net: skipping N=%zu (RLIMIT_NOFILE=%llu)\n", n,
                   static_cast<unsigned long long>(nofile.rlim_cur));
      continue;
    }
    SizeRow row;
    row.connections = n;
    const auto legacy = run_mode(n, ModeSpec{.poll_loop = 1}, cfg);
    const auto reactor =
        run_mode(n, ModeSpec{.net_threads = 1, .uring = 0}, cfg);
    if (!legacy || !reactor) {
      std::fprintf(stderr, "bench net: N=%zu setup failed, skipping\n", n);
      continue;
    }
    row.legacy = *legacy;
    row.reactor = *reactor;
    // Identity check: the single-loop epoll reactor must carry the scripted
    // session at least as far as the legacy loop (the legacy run can itself
    // drop a round to driver timing, so >= rather than == keeps the pin on
    // the reactor, not on legacy flakiness).
    row.identity_ok = row.reactor.polls_settled >= row.legacy.polls_settled;
    if (!row.identity_ok) {
      std::fprintf(stderr,
                   "bench net: IDENTITY MISMATCH at N=%zu — reactor settled "
                   "%zu polls, legacy %zu\n",
                   n, row.reactor.polls_settled, row.legacy.polls_settled);
    }
    print_mode(std::to_string(n), "legacy", row.legacy);
    print_mode("", "reactor", row.reactor);
    for (const int loops : cfg.multi_loops) {
      const auto multi =
          run_mode(n, ModeSpec{.net_threads = loops, .uring = 0}, cfg);
      if (!multi) {
        std::fprintf(stderr, "bench net: N=%zu loops=%d setup failed\n", n,
                     loops);
        continue;
      }
      row.multi.push_back({loops, *multi});
      print_mode("", "multi-" + std::to_string(loops), *multi);
    }
    if (uring_ok) {
      const auto uring =
          run_mode(n, ModeSpec{.net_threads = 1, .uring = 1}, cfg);
      if (uring) {
        row.have_uring = true;
        row.uring = *uring;
        print_mode("", "uring", *uring);
      }
    }
    std::printf("  -> idle reduction %.1fx, throughput %.2fx, multi-loop "
                "%.2fx, uring sys/frame ratio %.3f, identity %s\n",
                row.idle_wakeup_reduction(), row.throughput_speedup(),
                row.best_multi_loop_speedup(), row.uring_syscall_ratio(),
                row.identity_ok ? "ok" : "MISMATCH");
    rows.push_back(row);
  }

  write_json(rows, quick);
  std::printf("\n-> BENCH_net.json (%zu sizes)\n", rows.size());
  bool identity_all = true;
  for (const SizeRow& row : rows) identity_all &= row.identity_ok;
  if (!quick) {
    // Acceptance gates: N = 1000 idle/throughput vs legacy; N = 4000
    // multi-loop ingest vs the single-loop reactor; io_uring syscall budget.
    for (const SizeRow& row : rows) {
      if (row.connections == 1000) {
        std::printf("acceptance (N=1000): idle %.1fx (target 5x), "
                    "throughput %.2fx (target 2x)\n",
                    row.idle_wakeup_reduction(), row.throughput_speedup());
      }
      if (row.connections == 4000) {
        const unsigned cores = std::thread::hardware_concurrency();
        std::printf("acceptance (N=4000): multi-loop ingest %.2fx over "
                    "single loop (target 2x%s)\n",
                    row.best_multi_loop_speedup(),
                    cores >= 2 ? ""
                               : "; single-core host, loop parallelism "
                                 "unavailable — gate needs >= 2 cores");
      }
      if (row.have_uring) {
        std::printf("acceptance (N=%zu): uring %.3f sys/frame vs epoll "
                    "%.3f (target: fewer)\n",
                    row.connections, row.uring.syscalls_per_frame,
                    row.reactor.syscalls_per_frame);
      }
    }
  }
  if (!identity_all) return 1;
  return rows.empty() ? 1 : 0;
}

}  // namespace
}  // namespace volley

int main() { return volley::bench_main(); }
