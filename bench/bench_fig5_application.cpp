// Figure 5(c) — application-level monitoring efficiency.
// Same axes; each task watches one web object's access rate at Id = 1 s,
// thresholds at the (100-k)-th percentile of the rate series.
// Paper: large savings thanks to bursty arrivals and long off-peak valleys
// (diurnal effects) — comparable to or better than network monitoring.
//
// Runs through the timed sweep harness: per-(k, object) thresholds and
// ground truth are scored once and shared across the err rows.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "tasks/app_task.h"

namespace volley {
namespace {

void run() {
  HttpLogOptions options;
  options.objects = 8;
  options.ticks = 86400;  // one full day at 1 s (valley at both ends)
  options.ticks_per_day = 86400;
  options.diurnal_phase = 43200;  // peak mid-trace
  options.diurnal_depth = 0.98;   // WorldCup nights are nearly idle
  options.mean_rps = 20.0;
  options.flash_boost = 8.0;
  options.flash.mean_gap = 6000;
  options.seed = 111;
  HttpLogGenerator generator(options);
  const auto traces = generator.generate();

  std::vector<double> ks = {0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4};
  std::vector<double> errs = {0.002, 0.004, 0.008, 0.016, 0.032};
  if (bench::quick()) {
    ks = {0.4, 3.2};
    errs = {0.008};
  }

  // Per-(k, object) spec and ground truth, shared across err rows.
  struct Variant {
    TaskSpec spec;
    GroundTruth truth;
  };
  std::vector<Variant> variants;
  variants.reserve(ks.size() * traces.size());
  for (double k : ks) {
    for (std::size_t o = 0; o < traces.size(); ++o) {
      auto task = make_app_task(traces[o], o, k, errs.front());
      task.spec.max_interval = 40;
      task.spec.estimator.stats_window = 300;  // 5 min at 1 s
      variants.push_back(
          {task.spec, GroundTruth::from_series(traces[o].rate, task.threshold)});
    }
  }

  std::vector<sim::SweepCell> cells;
  cells.reserve(errs.size() * variants.size());
  for (double err : errs) {
    std::size_t v = 0;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      for (std::size_t o = 0; o < traces.size(); ++o, ++v) {
        sim::SweepCell cell;
        cell.spec = variants[v].spec;
        cell.spec.error_allowance = err;
        cell.series = &traces[o].rate;
        cell.truth = &variants[v].truth;
        cells.push_back(cell);
      }
    }
  }

  bench::SweepTiming timing;
  const auto results = bench::timed_sweep("fig5_application", cells, &timing);

  bench::print_header(
      "Figure 5(c) — application monitoring: sampling ratio vs err and k",
      "large savings from bursty accesses and off-peak valleys "
      "(paper Fig. 5c)");
  std::printf("workload: %zu objects, 24 h @ Id=1 s, flash crowds\n\n",
              traces.size());

  std::vector<std::string> header{"err \\ k"};
  for (double k : ks) header.push_back(bench::fmt(k, 1) + "%");
  bench::print_row(header);

  std::size_t idx = 0;
  for (double err : errs) {
    std::vector<std::string> row{bench::fmt(err, 3)};
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      double ratio_sum = 0.0;
      std::int64_t tasks = 0;
      for (std::size_t o = 0; o < traces.size(); ++o) {
        ratio_sum += results[idx++].sampling_ratio();
        ++tasks;
      }
      row.push_back(bench::fmt(ratio_sum / static_cast<double>(tasks), 3));
    }
    bench::print_row(row);
  }
  std::printf("\n(expect ratios close to or below Figure 5(a))\n");
  bench::print_timing("fig5_application", timing);
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
