// Figure 7 — actual mis-detection rate of alerts vs error allowance for
// system-level tasks, per selectivity k.
// Paper: the achieved rate stays below the specified err in most cases;
// high-selectivity (small-k) tasks show relatively larger rates because
// they have few alerts (small denominator) and longer intervals.
//
// Runs through the timed sweep harness: each (node, metric) series is
// generated once, each (k, node, metric) threshold/ground-truth pair is
// scored once, and the err rows reuse both.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "tasks/system_task.h"

namespace volley {
namespace {

void run() {
  SysMetricsOptions options;
  options.nodes = 6;
  options.ticks = 17280;
  options.ticks_per_day = 17280;
  options.diurnal_phase = 8640;
  options.diurnal_depth = 0.7;
  options.sigma_load_floor = 0.15;
  options.seed = 131;
  SysMetricsGenerator generator(options);
  // Mostly spiky metric families (iowait, swap, major faults, page scans,
  // disk await, NIC errors): single-tick excursions are the alerts an
  // enlarged interval can actually miss.
  const std::size_t metrics[] = {3, 21, 22, 23, 29, 30, 31, 35, 52, 58};

  std::vector<double> ks = {0.4, 0.8, 1.6, 3.2, 6.4};
  std::vector<double> errs = {0.002, 0.004, 0.008, 0.016, 0.032};
  if (bench::quick()) {
    ks = {0.8, 3.2};
    errs = {0.008};
  }

  // One generated series per (node, metric), shared by every grid cell.
  std::vector<TimeSeries> series;
  series.reserve(options.nodes * std::size(metrics));
  for (std::size_t node = 0; node < options.nodes; ++node) {
    for (std::size_t metric : metrics)
      series.push_back(generator.generate_metric(node, metric));
  }

  // Per-(k, node, metric) spec and ground truth, shared across err rows.
  struct Variant {
    TaskSpec spec;
    GroundTruth truth;
  };
  std::vector<Variant> variants;
  variants.reserve(ks.size() * series.size());
  for (double k : ks) {
    std::size_t s = 0;
    for (std::size_t node = 0; node < options.nodes; ++node) {
      for (std::size_t metric : metrics) {
        auto task = make_system_task(generator, node, metric, k, errs.front());
        task.spec.max_interval = 40;
        task.spec.estimator.stats_window = 720;
        variants.push_back(
            {task.spec, GroundTruth::from_series(series[s], task.threshold)});
        ++s;
      }
    }
  }

  std::vector<sim::SweepCell> cells;
  cells.reserve(errs.size() * variants.size());
  for (double err : errs) {
    std::size_t v = 0;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      for (std::size_t s = 0; s < series.size(); ++s, ++v) {
        sim::SweepCell cell;
        cell.spec = variants[v].spec;
        cell.spec.error_allowance = err;
        cell.series = &series[s];
        cell.truth = &variants[v].truth;
        cells.push_back(cell);
      }
    }
  }

  bench::SweepTiming timing;
  const auto results = bench::timed_sweep("fig7_misdetection", cells, &timing);

  bench::print_header(
      "Figure 7 — actual mis-detection rate vs error allowance (system tasks)",
      "achieved rate below the specified err in most cases; small-k tasks "
      "relatively worse (paper Fig. 7)");
  std::printf("mis-detection = missed alert instants / true alert instants "
              "(vs periodic sampling at Id), aggregated over %zu tasks per "
              "cell; err is the target\n\n",
              options.nodes * std::size(metrics));

  std::vector<std::string> header{"err \\ k"};
  for (double k : ks) header.push_back(bench::fmt(k, 1) + "%");
  bench::print_row(header);

  std::size_t idx = 0;
  for (double err : errs) {
    std::vector<std::string> row{bench::fmt(err, 3)};
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      std::int64_t missed = 0;
      std::int64_t total = 0;
      for (std::size_t s = 0; s < series.size(); ++s) {
        const auto& r = results[idx++];
        missed += r.true_alert_ticks - r.detected_alert_ticks;
        total += r.true_alert_ticks;
      }
      const double rate =
          total == 0 ? 0.0
                     : static_cast<double>(missed) / static_cast<double>(total);
      row.push_back(bench::fmt_pct(rate, 2));
    }
    bench::print_row(row);
  }
  std::printf("\n(compare each cell against its row's err target)\n");
  bench::print_timing("fig7_misdetection", timing);
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
