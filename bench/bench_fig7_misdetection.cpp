// Figure 7 — actual mis-detection rate of alerts vs error allowance for
// system-level tasks, per selectivity k.
// Paper: the achieved rate stays below the specified err in most cases;
// high-selectivity (small-k) tasks show relatively larger rates because
// they have few alerts (small denominator) and longer intervals.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "tasks/system_task.h"

namespace volley {
namespace {

void run() {
  SysMetricsOptions options;
  options.nodes = 6;
  options.ticks = 17280;
  options.ticks_per_day = 17280;
  options.diurnal_phase = 8640;
  options.diurnal_depth = 0.7;
  options.sigma_load_floor = 0.15;
  options.seed = 131;
  SysMetricsGenerator generator(options);
  // Mostly spiky metric families (iowait, swap, major faults, page scans,
  // disk await, NIC errors): single-tick excursions are the alerts an
  // enlarged interval can actually miss.
  const std::size_t metrics[] = {3, 21, 22, 23, 29, 30, 31, 35, 52, 58};

  const double ks[] = {0.4, 0.8, 1.6, 3.2, 6.4};
  const double errs[] = {0.002, 0.004, 0.008, 0.016, 0.032};

  bench::print_header(
      "Figure 7 — actual mis-detection rate vs error allowance (system tasks)",
      "achieved rate below the specified err in most cases; small-k tasks "
      "relatively worse (paper Fig. 7)");
  std::printf("mis-detection = missed alert instants / true alert instants "
              "(vs periodic sampling at Id), aggregated over %zu tasks per "
              "cell; err is the target\n\n",
              options.nodes * std::size(metrics));

  std::vector<std::string> header{"err \\ k"};
  for (double k : ks) header.push_back(bench::fmt(k, 1) + "%");
  bench::print_row(header);

  for (double err : errs) {
    std::vector<std::string> row{bench::fmt(err, 3)};
    for (double k : ks) {
      std::int64_t missed = 0;
      std::int64_t total = 0;
      for (std::size_t node = 0; node < options.nodes; ++node) {
        for (std::size_t metric : metrics) {
          auto task = make_system_task(generator, node, metric, k, err);
          task.spec.max_interval = 40;
          task.spec.estimator.stats_window = 720;
          const auto r = run_volley_single(task.spec, task.series);
          missed += r.true_alert_ticks - r.detected_alert_ticks;
          total += r.true_alert_ticks;
        }
      }
      const double rate =
          total == 0 ? 0.0
                     : static_cast<double>(missed) / static_cast<double>(total);
      row.push_back(bench::fmt_pct(rate, 2));
    }
    bench::print_row(row);
  }
  std::printf("\n(compare each cell against its row's err target)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
