// Figure 2 (violation-likelihood based adaptation, illustrated): the
// sampling interval trajectory of one monitor — growing by +1 after p safe
// checks on a quiet stretch, collapsing to the default interval the moment
// beta exceeds err as a violation approaches.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "tasks/network_task.h"

namespace volley {
namespace {

void run() {
  NetworkWorkloadOptions options;
  options.netflow.vms = 1;
  options.netflow.ticks = 4000;
  options.netflow.ticks_per_day = 4000;
  options.netflow.diurnal_phase = 2000;
  options.netflow.seed = 81;
  options.attacks_per_vm = 0;
  NetworkWorkload workload(options);
  auto traffic = workload.generate_traffic();

  DdosEpisode attack;
  attack.start = 3000;
  attack.ramp = 6;
  attack.plateau = 10;
  attack.decay = 6;
  attack.peak_syn_rate = 3000.0;
  Rng rng(83);
  inject_ddos(traffic[0], attack, rng);

  auto task = NetworkWorkload::make_task(std::move(traffic[0]), 0.5, 0.01);
  task.spec.max_interval = 10;
  task.spec.patience = 10;

  RunOptions opt;
  opt.record_ops = true;
  opt.record_intervals = true;
  const auto r = run_volley_single(task.spec, task.traffic.rho, opt);

  bench::print_header(
      "Figure 2 — interval trajectory of violation-likelihood adaptation",
      "interval steps up by 1 after p safe checks, resets to Id when "
      "beta(I) > err (AIMD-like)");
  std::printf("err=0.01 gamma=0.2 p=%d Im=%lld; attack at t=%lld..%lld\n\n",
              task.spec.patience,
              static_cast<long long>(task.spec.max_interval),
              static_cast<long long>(attack.start),
              static_cast<long long>(attack.start + attack.length()));

  // Print the interval at each sampling operation, compressed: only rows
  // where the interval changed, plus the ops surrounding the attack.
  bench::print_row({"op tick", "interval", "note"});
  Tick prev_interval = 0;
  for (std::size_t i = 0; i < r.op_ticks[0].size(); ++i) {
    const Tick t = r.op_ticks[0][i];
    const Tick interval = r.interval_trajectory[i];
    const bool near_attack =
        t >= attack.start - 10 && t <= attack.start + attack.length() + 10;
    if (interval != prev_interval || near_attack) {
      std::string note;
      if (interval < prev_interval) note = "<<< reset to Id";
      else if (interval > prev_interval) note = "+1";
      bench::print_row({std::to_string(t), std::to_string(interval), note});
      prev_interval = interval;
    }
  }
  std::printf("\nsummary: ops=%lld ratio=%s detected=%lld/%lld episodes\n",
              static_cast<long long>(r.total_ops()),
              bench::fmt(r.sampling_ratio(), 3).c_str(),
              static_cast<long long>(r.detected_episodes),
              static_cast<long long>(r.true_episodes));
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
