// Extension — pay-as-you-go monitoring fees (paper Section I: CloudWatch
// charges per sample; monitoring can reach 18% of total operation cost).
// Prices a month of fleet monitoring (800 monitors) at 1-minute periodic
// sampling vs Volley at the Figure 5 savings levels, and reports the fee
// as a share of total spend.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/billing.h"

namespace volley {
namespace {

void run() {
  BillingModel model;
  model.dollars_per_1k_samples = 0.01;
  model.base_operation_cost = 800.0;  // the fleet's non-monitoring spend
  model.validate();

  const std::int64_t monitors = 800;
  const std::int64_t periodic_per_monitor =
      BillingModel::periodic_samples_per_month(60.0);
  const std::int64_t periodic = monitors * periodic_per_monitor;

  bench::print_header(
      "Extension — monetary monitoring cost (pay-as-you-go fees)",
      "Section I: sampling fees up to 18% of operation cost; Volley's "
      "op savings translate 1:1 into fee savings");
  std::printf("fleet: %lld monitors, 1-minute default interval, $%.3f per "
              "1k samples, $%.0f/month base operation cost\n\n",
              static_cast<long long>(monitors),
              model.dollars_per_1k_samples, model.base_operation_cost);

  bench::print_row({"scheme", "samples/mo", "fee $", "share of total"});
  struct Row {
    const char* name;
    double ratio;  // of periodic ops
  };
  const Row rows[] = {
      {"periodic 1-min", 1.0},
      {"periodic 5-min", 0.2},
      {"periodic 15-min", 1.0 / 15.0},
      {"volley err=0.002", 0.146},  // measured Figure 5(a), k=0.1%
      {"volley err=0.032", 0.118},
  };
  for (const auto& row : rows) {
    const auto samples = static_cast<std::int64_t>(
        row.ratio * static_cast<double>(periodic));
    bench::print_row({row.name, std::to_string(samples),
                      bench::fmt(model.cost(samples), 2),
                      bench::fmt_pct(model.share_of_total(samples), 1)});
  }
  std::printf("\n(coarser periodic intervals save fees too — but miss "
              "violations, Figure 1; Volley keeps the 1-minute accuracy "
              "contract)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
