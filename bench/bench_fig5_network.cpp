// Figure 5(a) — network-level monitoring efficiency.
// Rows: error allowance err in {0.002 .. 0.032}; columns: alert selectivity
// k in {0.1% .. 6.4%}. Cells: sampling ratio (Volley ops / periodic ops at
// Id = 15 s), averaged over per-VM DDoS tasks on two days of generated
// Internet2-like traffic with injected SYN floods.
// Paper: 40-90% savings (ratio 0.6 down to 0.1), savings grow with err and
// with smaller k.
//
// The grid runs through the timed sweep harness (bench_util.h): thresholds
// and ground truth depend on k but not err, so each (k, VM) pair is scored
// once and shared across the err rows, and the whole batch fans out over
// the worker pool.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "tasks/network_task.h"

namespace volley {
namespace {

void run() {
  NetworkWorkloadOptions options;
  options.netflow.vms = 12;
  options.netflow.ticks = 11520;  // 2 days at 15 s
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 2880;
  options.netflow.diurnal_depth = 0.96;  // Internet2 nights are near-silent
  // The paper scales flows down per VM (F/n, Section V-A): per-address
  // volumes are small, so quiet windows have near-zero rho variance.
  options.netflow.mean_flows_per_tick = 10.0;
  // Per-address session structure: long (~5 h) active/idle phases, idle
  // traffic at 0.5% of active — half of all windows are nearly silent,
  // which is what lets even high-k (low-threshold) tasks save sampling.
  options.netflow.off_rate = 1.0 / 1200.0;
  options.netflow.on_rate = 1.0 / 1200.0;
  options.netflow.off_floor = 0.005;
  options.netflow.seed = 91;
  options.attack_prototype.peak_syn_rate = 2500.0;
  options.attack_prototype.ramp = 8;
  options.attack_prototype.plateau = 24;
  options.attack_prototype.decay = 8;
  options.attacks_per_vm = 4;
  options.seed = 93;
  NetworkWorkload workload(options);
  const auto traffic = workload.generate_traffic();

  std::vector<double> ks = {0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4};
  std::vector<double> errs = {0.002, 0.004, 0.008, 0.016, 0.032};
  if (bench::quick()) {
    ks = {0.4, 3.2};
    errs = {0.008};
  }

  // Per-(k, VM) spec and ground truth, shared across the err rows.
  struct Variant {
    TaskSpec spec;
    GroundTruth truth;
  };
  std::vector<Variant> variants;
  variants.reserve(ks.size() * traffic.size());
  for (double k : ks) {
    for (const auto& vm : traffic) {
      VmTraffic copy;
      copy.rho = vm.rho;
      copy.in_packets = vm.in_packets;
      auto task = NetworkWorkload::make_task(std::move(copy), k, errs.front());
      task.spec.max_interval = 40;
      // One-hour statistics window (240 x 15 s): traffic regimes switch
      // faster than the paper's 1000-sample default adapts (see the
      // stats-window ablation bench).
      task.spec.estimator.stats_window = 240;
      variants.push_back(
          {task.spec, GroundTruth::from_series(vm.rho, task.threshold)});
    }
  }

  std::vector<sim::SweepCell> cells;
  cells.reserve(errs.size() * variants.size());
  for (double err : errs) {
    std::size_t v = 0;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      for (std::size_t vmi = 0; vmi < traffic.size(); ++vmi, ++v) {
        sim::SweepCell cell;
        cell.spec = variants[v].spec;
        cell.spec.error_allowance = err;
        cell.series = &traffic[vmi].rho;
        cell.truth = &variants[v].truth;
        cells.push_back(cell);
      }
    }
  }

  bench::SweepTiming timing;
  const auto results = bench::timed_sweep("fig5_network", cells, &timing);

  bench::print_header(
      "Figure 5(a) — network monitoring: sampling ratio vs err and k",
      "40-90% savings; larger err and smaller k save more (paper Fig. 5a)");
  std::printf("workload: %zu VMs, 2 days @ Id=15 s, SYN-flood episodes "
              "injected; cells = Volley ops / periodic ops\n\n",
              traffic.size());

  std::vector<std::string> header{"err \\ k"};
  for (double k : ks) header.push_back(bench::fmt(k, 1) + "%");
  bench::print_row(header);

  std::size_t idx = 0;
  for (double err : errs) {
    std::vector<std::string> row{bench::fmt(err, 3)};
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      double ratio_sum = 0.0;
      std::int64_t tasks = 0;
      for (std::size_t vmi = 0; vmi < traffic.size(); ++vmi) {
        ratio_sum += results[idx++].sampling_ratio();
        ++tasks;
      }
      row.push_back(bench::fmt(ratio_sum / static_cast<double>(tasks), 3));
    }
    bench::print_row(row);
  }
  std::printf("\n(lower is better; 0.10 = 90%% of sampling cost saved)\n");
  bench::print_timing("fig5_network", timing);
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
