// Robustness — Volley under message loss and monitor outages.
// The paper assumes reliable delivery; its cited companion work [22]
// ("Reliable state monitoring in cloud datacenters") studies exactly these
// failures. This bench quantifies how gracefully the Volley protocol
// degrades: violation-report loss removes detection opportunities roughly
// linearly, poll-response loss falls back to stale values and costs little,
// and an outage blinds the task only if it hides the violating monitor.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "sim/faults.h"

namespace volley {
namespace {

TimeSeries make_series(Tick ticks, std::uint64_t seed, bool spiky) {
  Rng rng(seed);
  TimeSeries s(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    double v = rng.normal(0.0, 0.05);
    if (spiky && t % 400 == 399) v += 12.0;  // short violations to miss
    s[static_cast<std::size_t>(t)] = v;
  }
  return s;
}

void run() {
  const Tick ticks = 40000;
  std::vector<TimeSeries> series{make_series(ticks, 1, true),
                                 make_series(ticks, 2, false),
                                 make_series(ticks, 3, false),
                                 make_series(ticks, 4, false)};
  const std::vector<double> locals{2.0, 2.0, 2.0, 2.0};
  TaskSpec spec;
  spec.global_threshold = 8.0;
  spec.error_allowance = 0.04;
  spec.max_interval = 16;
  spec.updating_period = 1000;

  bench::print_header(
      "Robustness — message loss and outages (companion work [22] concern)",
      "detection degrades ~linearly with report loss; stale-value fallback "
      "absorbs response loss; cost stays flat");

  bench::print_row({"fault", "ratio", "det. ticks", "stale polls"});
  auto report = [&](const char* name, const FaultyRunResult& r) {
    bench::print_row({name, bench::fmt(r.run.sampling_ratio(), 3),
                      std::to_string(r.run.detected_alert_ticks) + "/" +
                          std::to_string(r.run.true_alert_ticks),
                      std::to_string(r.stale_polls)});
  };

  report("none", run_volley_faulty(spec, series, locals, FaultPlan{}));
  for (double loss : {0.1, 0.3, 0.5}) {
    FaultPlan plan;
    plan.violation_report_loss = loss;
    char name[48];
    std::snprintf(name, sizeof(name), "report loss %.0f%%", 100.0 * loss);
    report(name, run_volley_faulty(spec, series, locals, plan));
  }
  for (double loss : {0.3}) {
    FaultPlan plan;
    plan.poll_response_loss = loss;
    report("response loss 30%",
           run_volley_faulty(spec, series, locals, plan));
  }
  {
    FaultPlan plan;
    plan.outages.push_back(MonitorOutage{1, 10000, 20000});  // bystander
    report("bystander outage",
           run_volley_faulty(spec, series, locals, plan));
  }
  {
    FaultPlan plan;
    plan.outages.push_back(MonitorOutage{0, 10000, 20000});  // the violator
    report("violator outage",
           run_volley_faulty(spec, series, locals, plan));
  }
  std::printf("\n(det. ticks = alert instants detected / ground truth; the "
              "violating monitor spikes every 400 ticks)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
