// Extension — composing Volley with random packet sampling (paper
// Section VI: "Volley is complementary to random sampling ... additional
// cost savings by scheduling sampling operations").
//
// Random sampling inspects a fraction f of packets (per-op DPI cost x f,
// estimation noise up); Volley schedules when operations run (op count
// down). The bench sweeps f with Volley on/off and reports total
// inspected-packet cost, op counts, and accuracy — the composition
// dominates either technique alone on cost at matched accuracy.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "tasks/network_task.h"
#include "trace/sampling.h"

namespace volley {
namespace {

void run() {
  NetworkWorkloadOptions options;
  options.netflow.vms = 8;
  options.netflow.ticks = 11520;
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 2880;
  options.netflow.diurnal_depth = 0.96;
  options.netflow.mean_flows_per_tick = 200.0;  // heavy DPI load
  options.netflow.off_rate = 1.0 / 1200.0;
  options.netflow.on_rate = 1.0 / 1200.0;
  options.netflow.off_floor = 0.005;
  options.netflow.seed = 181;
  options.attack_prototype.peak_syn_rate = 20000.0;
  options.attacks_per_vm = 3;
  options.poisson_attack_counts = false;
  options.seed = 183;
  NetworkWorkload workload(options);
  const auto traffic = workload.generate_traffic();

  bench::print_header(
      "Extension — Volley composed with random packet sampling (Section VI)",
      "thinning cuts per-op DPI cost, Volley cuts op count; together they "
      "multiply (err = 0.01, k = 0.5%)");

  bench::print_row({"f / scheduler", "ops ratio", "pkt cost", "ep.miss"});
  Rng rng(185);
  for (double fraction : {1.0, 0.25, 0.05}) {
    for (bool volley_on : {false, true}) {
      double ops_ratio = 0.0, cost = 0.0, base_cost = 0.0, miss = 0.0;
      int n = 0;
      for (const auto& vm : traffic) {
        ThinningOptions thin_options;
        thin_options.fraction = fraction;
        Rng vm_rng = rng.fork();
        VmTraffic observed = fraction < 1.0
                                 ? thin_traffic(vm, thin_options, vm_rng)
                                 : vm;
        auto task = NetworkWorkload::make_task(std::move(observed), 0.5,
                                               0.01);
        task.spec.max_interval = 40;
        task.spec.estimator.stats_window = 240;
        RunResult r;
        if (volley_on) {
          RunOptions ropt;
          ropt.record_ops = true;
          r = run_volley_single(task.spec, task.traffic.rho, ropt);
          for (Tick t : r.op_ticks[0]) {
            cost += task.traffic.in_packets[static_cast<std::size_t>(t)];
          }
        } else {
          const TimeSeries arr[] = {task.traffic.rho};
          r = run_periodic(arr, task.spec.global_threshold, 1);
          for (std::size_t t = 0; t < task.traffic.in_packets.size(); ++t) {
            cost += task.traffic.in_packets[t];
          }
        }
        for (std::size_t t = 0; t < vm.in_packets.size(); ++t) {
          base_cost += vm.in_packets[t];  // full-inspection periodic cost
        }
        ops_ratio += r.sampling_ratio();
        miss += r.episode_miss_rate();
        ++n;
      }
      char label[64];
      std::snprintf(label, sizeof(label), "f=%.2f %s", fraction,
                    volley_on ? "volley" : "periodic");
      bench::print_row({label, bench::fmt(ops_ratio / n, 3),
                        bench::fmt_pct(cost / base_cost, 1),
                        bench::fmt_pct(miss / n, 1)});
    }
  }
  std::printf("\n(packet cost = inspected packets vs full-inspection "
              "periodic sampling; thinning adds estimation noise, which "
              "costs some accuracy at small f)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
