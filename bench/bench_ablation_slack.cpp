// Ablation — the adaptation knobs gamma (slack ratio) and p (patience).
// The paper recommends gamma = 0.2, p = 20 "through empirical observation"
// (Section III-B); this bench shows the trade-off that recommendation
// balances: small gamma/p grow aggressively (more savings, more risk of
// interval churn and missed alerts), large gamma/p are conservative.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "tasks/network_task.h"

namespace volley {
namespace {

void run() {
  NetworkWorkloadOptions options;
  options.netflow.vms = 8;
  options.netflow.ticks = 11520;
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 2880;
  options.netflow.diurnal_depth = 0.96;
  options.netflow.mean_flows_per_tick = 10.0;
  options.netflow.off_rate = 1.0 / 1200.0;
  options.netflow.on_rate = 1.0 / 1200.0;
  options.netflow.off_floor = 0.005;
  options.netflow.seed = 141;
  options.attack_prototype.peak_syn_rate = 2500.0;
  options.attacks_per_vm = 3;
  options.seed = 143;
  NetworkWorkload workload(options);
  const auto traffic = workload.generate_traffic();

  bench::print_header(
      "Ablation — slack ratio gamma and patience p (network task, err=0.01)",
      "paper picks gamma=0.2, p=20: near-best savings without the "
      "mis-detection risk of gamma=0 or p=1");

  bench::print_row({"gamma \\ p", "1", "5", "20", "50"});
  for (double gamma : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    std::vector<std::string> ratio_row{bench::fmt(gamma, 2)};
    std::vector<std::string> miss_row{"  miss%"};
    for (int patience : {1, 5, 20, 50}) {
      double ratio_sum = 0.0, miss_sum = 0.0;
      std::int64_t n = 0;
      for (const auto& vm : traffic) {
        VmTraffic copy;
        copy.rho = vm.rho;
        copy.in_packets = vm.in_packets;
        auto task = NetworkWorkload::make_task(std::move(copy), 0.5, 0.01);
        task.spec.max_interval = 40;
        task.spec.slack_ratio = gamma;
        task.spec.patience = patience;
        task.spec.estimator.stats_window = 240;
        const auto r = run_volley_single(task.spec, task.traffic.rho);
        ratio_sum += r.sampling_ratio();
        miss_sum += r.episode_miss_rate();
        ++n;
      }
      ratio_row.push_back(bench::fmt(ratio_sum / static_cast<double>(n), 3));
      miss_row.push_back(
          bench::fmt_pct(miss_sum / static_cast<double>(n), 2));
    }
    bench::print_row(ratio_row);
    bench::print_row(miss_row);
  }
  std::printf("\n(per gamma: top row = sampling ratio, bottom = missed alert "
              "episodes)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
