// Datacenter-scale hot-path benchmark (DESIGN.md §10, §11).
//
// Part 1 — single-task coordinator tick throughput at 1k/10k/50k monitors.
// A quiet workload (every sampler pinned at Im in steady state) is driven
// through Coordinator::run_tick three ways, all asserted bit-identical:
//   scan+scalar   legacy full scan with the verbatim β̄ loop — the
//                 pre-due-index, pre-kernel baseline;
//   index+scalar  due index, still the scalar β̄ loop (VOLLEY_SCALAR_BETA
//                 semantics) — isolates the scheduling win;
//   index+kernel  due index plus the likelihood kernel's batched drain —
//                 the default path; isolates the β̄-evaluation win.
// Idle ticks (nothing due — the due index's O(1) case) and sample ticks
// (every monitor due — the β̄ kernel's case) are timed as separate phases.
// Im = 128 also exercises the Im-derived interval-histogram bound.
//
// Part 2 — the β̄-evaluation phase alone: identical lane populations
// evaluated by the scalar loop, the batch kernel (cold memos), and the
// batch kernel with warm memos (the incremental layer), reporting ns per
// evaluation. Two populations: "quiet" (far below threshold — the zero-β̄
// certificate regime adaptive sampling spends its life in) and "noisy"
// (near threshold — the blocked/SIMD product loop has to run). Every
// variant's outputs are asserted bitwise equal to the scalar loop's.
//
// Part 3 — a mixed fleet of 200 tasks on the discrete-event simulator with
// the paper's default-interval mix (1 s application, 5 s system, 15 s
// network tasks) and occasional bursts that force global polls, reporting
// events/sec scan vs indexed with the same identity assertion over every
// task's accounting and the run-scoped metrics snapshot.
//
// VOLLEY_BENCH_QUICK=1 shrinks all parts to smoke size. Emits
// BENCH_scale.json (schema checked by the CI bench-smoke job). The
// process-global trace sink is switched off while the bench runs
// (obs::set_global_trace_enabled) so the numbers measure the monitoring
// hot path, not the trace ring.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/coordinator.h"
#include "core/error_allocation.h"
#include "core/likelihood_kernel.h"
#include "core/metric_source.h"
#include "core/monitor.h"
#include "core/task.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace volley {
namespace {

/// Deterministic value hash: the per-monitor series are computed on the fly
/// (50k monitors worth of TimeSeries would dwarf the structures being
/// measured), and both modes replay the exact same values.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = (a + 1) * 0x9e3779b97f4a7c15ull ^
                    (b + 0x2545f4914f6cdd1dull) * 0xbf58476d1ce4e5b9ull;
  h ^= h >> 31;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 28;
  return h;
}

// --- Part 1: single-task run_tick throughput --------------------------
//
// Steady state is phase-locked by construction: every monitor follows the
// same adaptation timeline (identical options, always-safe series), so all
// of them are due on the same tick once per Im — the remaining Im-1 ticks
// are no-op ticks, which is where the scan pays O(monitors) for nothing.
// The two tick classes are timed separately (idle ticks in blocks between
// sample ticks, so no per-tick clock reads pollute the idle numbers):
//  * idle ticks — pure scheduling overhead, the cost the due index removes;
//  * sample ticks — dominated by the adaptation rule itself (the O(I)
//    beta-bound product per observation), identical work in both modes.

struct SingleTiming {
  RunResult result;
  double idle_seconds{0.0};
  double sample_seconds{0.0};
  Tick idle_ticks{0};
  Tick sample_ticks{0};

  double idle_tps() const {
    return static_cast<double>(idle_ticks) / idle_seconds;
  }
  double sample_tps() const {
    return static_cast<double>(sample_ticks) / sample_seconds;
  }
  double overall_tps() const {
    return static_cast<double>(idle_ticks + sample_ticks) /
           (idle_seconds + sample_seconds);
  }
};

SingleTiming run_single(std::size_t n, bool scan, bool scalar, Tick warmup,
                        Tick timed, Tick max_interval) {
  const bool prior_scalar = scalar_beta();
  set_scalar_beta(scalar);
  SingleTiming out;
  obs::MetricsRegistry registry;
  {
    obs::ScopedMetricsRegistry scope(registry);

    TaskSpec spec;
    // Far enough above the ~1.0 values that the kernel's zero-β̄
    // certificate regime holds at I = Im: k_Im = T/(Im·σ) ≈ 1e9/(128·6e-4)
    // ≈ 1.3e10 ≥ 2^28. A merely-comfortable margin (say 1e6) leaves k_Im
    // ~2e7 below the certificate threshold and β̄ genuinely nonzero
    // (~1e-13), forcing the O(I) loop — quiet must mean *quiet*.
    spec.global_threshold = 1e9 * static_cast<double>(n);
    spec.error_allowance = 0.05;
    spec.max_interval = max_interval;
    spec.patience = 1;
    // No reallocation round inside the measured run: draining coordination
    // stats is O(monitors) in both modes and would blur the idle-tick
    // numbers (Part 2 exercises reallocation; the identity tests cover it).
    spec.updating_period = warmup + timed + 1;
    spec.estimator.stats_window = 32;

    const Tick total = warmup + timed;
    std::vector<std::unique_ptr<CallableSource>> sources;
    sources.reserve(n);
    std::vector<std::unique_ptr<Monitor>> monitors;
    monitors.reserve(n);
    const auto thresholds = split_threshold(spec.global_threshold, n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<MonitorId>(i);
      // Quiet series: ~1.0 with a deterministic wiggle, far below the
      // local threshold, so every sampler climbs to Im and stays there.
      sources.push_back(std::make_unique<CallableSource>(
          [id](Tick t) {
            const std::uint64_t h = mix(id, static_cast<std::uint64_t>(t));
            return 1.0 + 1e-3 * static_cast<double>(h & 1023u) / 1024.0;
          },
          total));
      monitors.push_back(std::make_unique<Monitor>(
          id, *sources.back(), spec.sampler_options(spec.error_allowance),
          thresholds[i]));
    }
    Coordinator coordinator(spec, std::move(monitors),
                            std::make_unique<EvenAllocation>());

    RunResult& r = out.result;
    r.ticks = total;
    r.monitors = n;
    // Untimed warm-up, always due-indexed (cheaper; both modes' runs stay
    // identical since the mode only changes *how* due monitors are found):
    // lets the AIMD rule climb to Im so the timed segment measures the
    // steady state a long-lived task lives in.
    Tick last_due = -1;
    for (Tick t = 0; t < warmup; ++t) {
      const auto tick = coordinator.run_tick(t);
      r.local_violations += tick.local_violations;
      if (tick.any_due) last_due = t;
    }
    if (last_due < 0 || coordinator.monitor(0).interval() != max_interval) {
      std::fprintf(stderr,
                   "bench scale: warm-up did not reach steady state at %zu "
                   "monitors (interval %lld, want Im=%lld)\n",
                   n, static_cast<long long>(coordinator.monitor(0).interval()),
                   static_cast<long long>(max_interval));
      std::exit(1);
    }
    coordinator.set_scan_ticks(scan);

    // Phase lock makes the sample ticks predictable: t = last_due (mod Im).
    const Tick residue = last_due % max_interval;
    double block_t0 = bench::now_seconds();
    for (Tick t = warmup; t < total; ++t) {
      const bool expect_due = (t % max_interval) == residue;
      if (expect_due) {
        out.idle_seconds += bench::now_seconds() - block_t0;
        const double s0 = bench::now_seconds();
        const auto tick = coordinator.run_tick(t);
        out.sample_seconds += bench::now_seconds() - s0;
        ++out.sample_ticks;
        r.local_violations += tick.local_violations;
        if (!tick.any_due) {
          std::fprintf(stderr, "bench scale: lost phase lock at tick %lld\n",
                       static_cast<long long>(t));
          std::exit(1);
        }
        block_t0 = bench::now_seconds();
      } else {
        const auto tick = coordinator.run_tick(t);
        r.local_violations += tick.local_violations;
        ++out.idle_ticks;
        if (tick.any_due) {
          std::fprintf(stderr, "bench scale: lost phase lock at tick %lld\n",
                       static_cast<long long>(t));
          std::exit(1);
        }
      }
    }
    out.idle_seconds += bench::now_seconds() - block_t0;

    for (std::size_t i = 0; i < n; ++i) {
      const Monitor& m = coordinator.monitor(i);
      r.scheduled_ops += m.scheduled_ops();
      r.forced_ops += m.forced_ops();
    }
    r.total_cost = coordinator.total_cost();
    r.global_polls = coordinator.global_polls();
    r.reallocations = coordinator.reallocations();
    r.metrics_json = registry.to_json();
  }
  set_scalar_beta(prior_scalar);
  return out;
}

// --- Part 2: the β̄-evaluation phase in isolation ----------------------
//
// Lane populations mirror the two regimes a monitor lives in. Quiet: far
// below threshold, where the kernel's zero-β̄ certificate answers in O(1);
// this is the steady state adaptive sampling creates (the whole point of
// growing I is that violations became unlikely). Noisy: near threshold,
// where the O(I) product loop must run and only the blocked/SIMD factor
// computation helps. "Incremental" re-evaluates the same lanes against
// warm per-lane memos — the same-key re-evaluation the AIMD rule performs
// between adaptation decisions.

struct BetaEvalTiming {
  std::size_t lanes{0};
  int reps{0};
  double scalar_ns{0.0};       // baseline loop, per evaluation
  double kernel_ns{0.0};       // batch kernel, cold memos
  double incremental_ns{0.0};  // batch kernel, warm memos

  double kernel_speedup() const { return scalar_ns / kernel_ns; }
  double incremental_speedup() const { return scalar_ns / incremental_ns; }
};

BetaEvalTiming time_beta_eval(bool quiet_population, std::size_t lanes,
                              int reps, Tick interval) {
  const bool prior_scalar = scalar_beta();
  set_scalar_beta(false);  // the kernel variants must not take the hatch
  BetaEvalTiming out;
  out.lanes = lanes;
  out.reps = reps;

  std::vector<double> value(lanes), threshold(lanes);
  std::vector<DeltaStats> stats(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::uint64_t h = mix(0x5eedull, l);
    const double u = static_cast<double>(h & 0xffffu) / 65536.0;
    if (quiet_population) {
      // Matches Part 1's steady state: k_I ~ 1e10 >= 2^28, so the zero-β̄
      // certificate answers without running the product loop.
      value[l] = 1.0 + 1e-3 * u;
      threshold[l] = 1e9;
      stats[l] = DeltaStats{1e-6 * u, 4e-4 * (0.5 + u)};
    } else {
      value[l] = 5.0 * u;
      threshold[l] = 10.0;
      stats[l] = DeltaStats{0.01 * u, 0.8 + u};
    }
  }

  // Scalar baseline loop.
  std::vector<double> expected(lanes);
  const double s0 = bench::now_seconds();
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t l = 0; l < lanes; ++l) {
      expected[l] = beta_bound_with(value[l], threshold[l], stats[l],
                                    interval, chebyshev_step_bound);
    }
  }
  out.scalar_ns = (bench::now_seconds() - s0) * 1e9 /
                  (static_cast<double>(lanes) * reps);

  const auto check = [&](const BetaBatch& batch, const char* variant) {
    for (std::size_t l = 0; l < lanes; ++l) {
      if (std::memcmp(&batch.beta[l], &expected[l], sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "bench scale: %s beta diverged from the scalar loop at "
                     "lane %zu (identity violation)\n",
                     variant, l);
        std::exit(1);
      }
    }
  };

  // Batch kernel, cold memos: every evaluation re-proves the certificate
  // or re-runs the blocked loop (caches cleared each rep).
  std::vector<BetaBoundCache> memos(lanes);
  BetaBatch batch;
  double kernel_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    for (auto& memo : memos) memo.invalidate();
    batch.clear();
    for (std::size_t l = 0; l < lanes; ++l) {
      batch.push_lane(value[l], threshold[l], stats[l], interval, false,
                      false, &memos[l]);
    }
    const double t0 = bench::now_seconds();
    beta_bound_batch(batch);
    kernel_seconds += bench::now_seconds() - t0;
  }
  check(batch, "batch-kernel");
  out.kernel_ns = kernel_seconds * 1e9 / (static_cast<double>(lanes) * reps);

  // Incremental: memos stay warm, so each evaluation is a key compare and
  // a memo read (the same-interval hit path).
  double incremental_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    batch.clear();
    for (std::size_t l = 0; l < lanes; ++l) {
      batch.push_lane(value[l], threshold[l], stats[l], interval, false,
                      false, &memos[l]);
    }
    const double t0 = bench::now_seconds();
    beta_bound_batch(batch);
    incremental_seconds += bench::now_seconds() - t0;
  }
  check(batch, "incremental");
  out.incremental_ns =
      incremental_seconds * 1e9 / (static_cast<double>(lanes) * reps);
  set_scalar_beta(prior_scalar);
  return out;
}

// --- Part 3: mixed-interval fleet on the event queue ------------------

struct SimOutcome {
  std::uint64_t events{0};
  double run_seconds{0.0};
  std::string metrics_json;
  // Per-task accounting, compared field by field between the two modes.
  std::vector<Tick> ticks_run;
  std::vector<std::int64_t> alerts;
  std::vector<std::int64_t> total_ops;
  std::vector<std::int64_t> polls;
  std::vector<std::int64_t> violations;
  std::vector<double> costs;

  bool same_as(const SimOutcome& o) const {
    return events == o.events && ticks_run == o.ticks_run &&
           alerts == o.alerts && total_ops == o.total_ops &&
           polls == o.polls && violations == o.violations &&
           costs == o.costs && metrics_json == o.metrics_json;
  }
};

SimOutcome run_sim(std::size_t tasks, SimTime horizon, bool scan) {
  SimOutcome out;
  obs::MetricsRegistry registry;
  {
    obs::ScopedMetricsRegistry scope(registry);

    constexpr std::size_t kMonitorsPerTask = 4;
    constexpr double kIds[] = {1.0, 5.0, 15.0};  // app / system / network

    std::vector<std::vector<std::unique_ptr<CallableSource>>> sources;
    sources.reserve(tasks);
    Simulation sim;
    for (std::size_t task = 0; task < tasks; ++task) {
      const double id_seconds = kIds[task % 3];
      const Tick ticks = static_cast<Tick>(horizon / id_seconds);

      TaskSpec spec;
      spec.global_threshold = 1.6 * kMonitorsPerTask;
      spec.error_allowance = 0.02;
      spec.id_seconds = id_seconds;
      spec.max_interval = 16;
      spec.patience = 2;
      spec.updating_period = 500;
      spec.estimator.stats_window = 32;

      const auto thresholds =
          split_threshold(spec.global_threshold, kMonitorsPerTask);
      std::vector<std::unique_ptr<CallableSource>> task_sources;
      std::vector<std::unique_ptr<Monitor>> monitors;
      for (std::size_t i = 0; i < kMonitorsPerTask; ++i) {
        const std::uint64_t key = task * kMonitorsPerTask + i;
        // Mildly noisy baseline with rare bursts past the local threshold:
        // the bursts trigger local violations and global polls, so the
        // identity check covers the poll + index-rebuild path too.
        task_sources.push_back(std::make_unique<CallableSource>(
            [key](Tick t) {
              const std::uint64_t h = mix(key, static_cast<std::uint64_t>(t));
              double v = 1.0 + 0.05 * static_cast<double>(h & 1023u) / 1024.0;
              if (h % 997 == 0) v += 1.0;
              return v;
            },
            ticks + 1));
        monitors.push_back(std::make_unique<Monitor>(
            static_cast<MonitorId>(i), *task_sources.back(),
            spec.sampler_options(spec.error_allowance), thresholds[i]));
      }
      auto coordinator = std::make_unique<Coordinator>(
          spec, std::move(monitors), std::make_unique<EvenAllocation>());
      coordinator->set_scan_ticks(scan);
      // Real fleets are not phase-aligned: stagger task starts.
      const double offset =
          id_seconds * static_cast<double>(task % 8) / 8.0;
      sim.add_task(std::move(coordinator), id_seconds, ticks, offset);
      sources.push_back(std::move(task_sources));
    }

    const double t0 = bench::now_seconds();
    out.events = sim.run(horizon + 60.0);
    out.run_seconds = bench::now_seconds() - t0;

    for (std::size_t task = 0; task < tasks; ++task) {
      const auto& stats = sim.stats(task);
      const Coordinator& c = sim.coordinator(task);
      out.ticks_run.push_back(stats.ticks_run);
      out.alerts.push_back(stats.alerts);
      out.total_ops.push_back(c.total_ops());
      out.polls.push_back(c.global_polls());
      std::int64_t lv = 0;
      for (std::size_t i = 0; i < c.monitor_count(); ++i)
        lv += c.monitor(i).local_violations();
      out.violations.push_back(lv);
      out.costs.push_back(c.total_cost());
    }
    out.metrics_json = registry.to_json();
  }
  return out;
}

// --- driver -----------------------------------------------------------

struct SingleRow {
  std::size_t monitors;
  double scan_idle_tps;
  double indexed_idle_tps;
  double speedup;  // idle-tick run_tick throughput ratio: the scan tax
  double scan_overall_tps;
  double indexed_overall_tps;
  double overall_speedup;
  // β̄ kernel columns (index+kernel vs index+scalar, DESIGN.md §11):
  double scalar_sample_tps;   // sample ticks/s, scalar β̄ loop
  double kernel_sample_tps;   // sample ticks/s, batched kernel
  double kernel_sample_speedup;
  double kernel_overall_tps;
  double kernel_overall_speedup;  // vs index+scalar: the headline claim
};

bool simd_enabled() {
#if defined(VOLLEY_OPENMP_SIMD)
  return true;
#else
  return false;
#endif
}

void write_scale_json(bool quick, Tick max_interval, Tick timed,
                      const std::vector<SingleRow>& rows,
                      const BetaEvalTiming& quiet_eval,
                      const BetaEvalTiming& noisy_eval,
                      std::size_t sim_tasks, const SimOutcome& sim_scan,
                      const SimOutcome& sim_indexed) {
  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench scale: cannot write BENCH_scale.json\n");
    return;
  }
  std::fprintf(f, "{\"bench\":\"scale\",\"quick\":%s,", quick ? "true" : "false");
  std::fprintf(f, "\"max_interval\":%lld,\"timed_ticks\":%lld,\"single\":[",
               static_cast<long long>(max_interval),
               static_cast<long long>(timed));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "%s{\"monitors\":%zu,\"scan_idle_ticks_per_sec\":%.1f,"
                 "\"indexed_idle_ticks_per_sec\":%.1f,\"speedup\":%.3f,"
                 "\"scan_overall_ticks_per_sec\":%.1f,"
                 "\"indexed_overall_ticks_per_sec\":%.1f,"
                 "\"overall_speedup\":%.3f,"
                 "\"scalar_sample_ticks_per_sec\":%.1f,"
                 "\"kernel_sample_ticks_per_sec\":%.1f,"
                 "\"kernel_sample_speedup\":%.3f,"
                 "\"kernel_overall_ticks_per_sec\":%.1f,"
                 "\"kernel_overall_speedup\":%.3f}",
                 i == 0 ? "" : ",", r.monitors, r.scan_idle_tps,
                 r.indexed_idle_tps, r.speedup, r.scan_overall_tps,
                 r.indexed_overall_tps, r.overall_speedup,
                 r.scalar_sample_tps, r.kernel_sample_tps,
                 r.kernel_sample_speedup, r.kernel_overall_tps,
                 r.kernel_overall_speedup);
  }
  std::fprintf(f,
               "],\"beta_eval\":{\"interval\":%lld,\"simd\":%s,"
               "\"quiet\":{\"lanes\":%zu,\"reps\":%d,"
               "\"scalar_ns_per_eval\":%.2f,\"kernel_ns_per_eval\":%.2f,"
               "\"incremental_ns_per_eval\":%.2f,\"kernel_speedup\":%.2f,"
               "\"incremental_speedup\":%.2f},"
               "\"noisy\":{\"lanes\":%zu,\"reps\":%d,"
               "\"scalar_ns_per_eval\":%.2f,\"kernel_ns_per_eval\":%.2f,"
               "\"incremental_ns_per_eval\":%.2f,\"kernel_speedup\":%.2f,"
               "\"incremental_speedup\":%.2f}},",
               static_cast<long long>(max_interval),
               simd_enabled() ? "true" : "false", quiet_eval.lanes,
               quiet_eval.reps, quiet_eval.scalar_ns, quiet_eval.kernel_ns,
               quiet_eval.incremental_ns, quiet_eval.kernel_speedup(),
               quiet_eval.incremental_speedup(), noisy_eval.lanes,
               noisy_eval.reps, noisy_eval.scalar_ns, noisy_eval.kernel_ns,
               noisy_eval.incremental_ns, noisy_eval.kernel_speedup(),
               noisy_eval.incremental_speedup());
  const double scan_eps =
      sim_scan.run_seconds > 0.0
          ? static_cast<double>(sim_scan.events) / sim_scan.run_seconds
          : 0.0;
  const double indexed_eps =
      sim_indexed.run_seconds > 0.0
          ? static_cast<double>(sim_indexed.events) / sim_indexed.run_seconds
          : 0.0;
  std::fprintf(f,
               "\"sim_tasks\":%zu,\"sim_events\":%llu,"
               "\"sim_scan_events_per_sec\":%.1f,"
               "\"sim_indexed_events_per_sec\":%.1f,\"sim_speedup\":%.3f,"
               "\"identical\":true}\n",
               sim_tasks, static_cast<unsigned long long>(sim_scan.events),
               scan_eps, indexed_eps,
               scan_eps > 0.0 ? indexed_eps / scan_eps : 0.0);
  std::fclose(f);
}

void run() {
  const bool quick = bench::quick();
  // Measure the monitoring hot path, not the trace ring: with the global
  // sink disabled, per-sample trace().record calls reduce to one branch.
  obs::set_global_trace_enabled(false);

  std::vector<std::size_t> sizes = {1000, 10000, 50000};
  Tick max_interval = 128;  // > 64: exercises the Im-derived histogram bound
  Tick warmup = 8600;       // AIMD climb to Im takes ~Im^2/2 ticks
  Tick timed = 1280;        // ten full Im cycles in steady state
  if (quick) {
    sizes = {1000, 10000};
    max_interval = 32;
    warmup = 700;
    timed = 320;
  }

  bench::print_header(
      "Scale — single-run hot path: due index + batched β̄ kernel",
      "in-process mirror of the paper's 800-VM deployment scale (Sec. V)");
  std::printf(
      "steady state: every sampler pinned at Im=%lld, so %lld of every "
      "%lld run_tick calls are no-op (idle) ticks — the scan still pays "
      "O(monitors) on each of them, the due index pays O(1). Sample-tick "
      "work (the adaptation rule itself) is identical in both modes.\n\n",
      static_cast<long long>(max_interval),
      static_cast<long long>(max_interval - 1),
      static_cast<long long>(max_interval));

  bench::print_row({"monitors", "idle speedup", "beta speedup", "overall",
                    "vs seed"});
  std::vector<SingleRow> rows;
  for (std::size_t n : sizes) {
    const auto scan = run_single(n, true, true, warmup, timed, max_interval);
    const auto scalar =
        run_single(n, false, true, warmup, timed, max_interval);
    const auto kernel =
        run_single(n, false, false, warmup, timed, max_interval);
    if (!bench::same_result(scan.result, scalar.result) ||
        !bench::same_result(scalar.result, kernel.result)) {
      std::fprintf(stderr,
                   "bench scale: scan/scalar/kernel runs diverged at "
                   "%zu monitors (determinism violation)\n",
                   n);
      std::exit(1);
    }
    SingleRow row;
    row.monitors = n;
    row.scan_idle_tps = scan.idle_tps();
    row.indexed_idle_tps = scalar.idle_tps();
    row.speedup = row.indexed_idle_tps / row.scan_idle_tps;
    row.scan_overall_tps = scan.overall_tps();
    row.indexed_overall_tps = scalar.overall_tps();
    row.overall_speedup = row.indexed_overall_tps / row.scan_overall_tps;
    row.scalar_sample_tps = scalar.sample_tps();
    row.kernel_sample_tps = kernel.sample_tps();
    row.kernel_sample_speedup = row.kernel_sample_tps / row.scalar_sample_tps;
    row.kernel_overall_tps = kernel.overall_tps();
    row.kernel_overall_speedup =
        row.kernel_overall_tps / row.indexed_overall_tps;
    rows.push_back(row);
    bench::print_row({std::to_string(n), bench::fmt(row.speedup, 1) + "x",
                      bench::fmt(row.kernel_sample_speedup, 1) + "x",
                      bench::fmt(row.kernel_overall_speedup, 2) + "x",
                      bench::fmt(row.kernel_overall_tps /
                                     row.scan_overall_tps, 2) + "x"});
  }
  std::printf(
      "\n(idle speedup: due-index vs scan on ticks with nothing due; beta "
      "speedup: batched likelihood kernel vs the scalar β̄ loop on sample "
      "ticks; overall: index+kernel vs index+scalar across all ticks — the "
      "DESIGN.md §11 headline; vs seed: index+kernel vs scan+scalar, the "
      "pre-index pre-kernel baseline. Identical RunResult accounting "
      "asserted across all three runs per size.)\n\n");

  // --- Part 2: β̄ evaluation in isolation ------------------------------
  const std::size_t eval_lanes = quick ? 20000 : 50000;
  const int eval_reps = quick ? 4 : 8;
  const auto quiet_eval =
      time_beta_eval(true, eval_lanes, eval_reps, max_interval);
  const auto noisy_eval =
      time_beta_eval(false, eval_lanes, eval_reps, max_interval);
  std::printf("beta evaluation phase (%zu lanes, I=%lld, SIMD %s):\n",
              eval_lanes, static_cast<long long>(max_interval),
              simd_enabled() ? "on" : "off");
  bench::print_row(
      {"population", "scalar ns", "kernel ns", "increm. ns", "speedup"});
  bench::print_row({"quiet", bench::fmt(quiet_eval.scalar_ns, 1),
                    bench::fmt(quiet_eval.kernel_ns, 1),
                    bench::fmt(quiet_eval.incremental_ns, 1),
                    bench::fmt(quiet_eval.kernel_speedup(), 1) + "x"});
  bench::print_row({"noisy", bench::fmt(noisy_eval.scalar_ns, 1),
                    bench::fmt(noisy_eval.kernel_ns, 1),
                    bench::fmt(noisy_eval.incremental_ns, 1),
                    bench::fmt(noisy_eval.kernel_speedup(), 1) + "x"});
  std::printf(
      "\n(ns per β̄ evaluation. quiet = far below threshold, the zero-β̄ "
      "certificate regime; noisy = near threshold, the blocked/SIMD loop. "
      "Every variant's lanes asserted bitwise equal to the scalar loop.)\n\n");

  const std::size_t sim_tasks = quick ? 40 : 200;
  const SimTime horizon = quick ? 900.0 : 3600.0;
  const auto sim_scan = run_sim(sim_tasks, horizon, true);
  const auto sim_indexed = run_sim(sim_tasks, horizon, false);
  if (!sim_scan.same_as(sim_indexed)) {
    std::fprintf(stderr,
                 "bench scale: mixed-fleet due-index run diverged from the "
                 "scan (determinism violation)\n");
    std::exit(1);
  }
  const double scan_eps =
      static_cast<double>(sim_scan.events) / sim_scan.run_seconds;
  const double indexed_eps =
      static_cast<double>(sim_indexed.events) / sim_indexed.run_seconds;
  std::printf("mixed fleet: %zu tasks (1 s / 5 s / 15 s Id mix), %llu "
              "events over %.0f virtual seconds\n",
              sim_tasks, static_cast<unsigned long long>(sim_scan.events),
              horizon);
  bench::print_row({"mode", "events/s", "", ""});
  bench::print_row({"scan", bench::fmt(scan_eps, 0), "", ""});
  bench::print_row({"due-index", bench::fmt(indexed_eps, 0), "", ""});
  std::printf("\nsim speedup: %.2fx (identical per-task accounting and "
              "metrics snapshots asserted)\n",
              indexed_eps / scan_eps);

  write_scale_json(quick, max_interval, timed, rows, quiet_eval, noisy_eval,
                   sim_tasks, sim_scan, sim_indexed);
  std::printf("-> BENCH_scale.json\n");
  obs::set_global_trace_enabled(true);
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
