// Figure 1 (motivating example): on a DDoS trace, compare
//   scheme A — periodic at the default interval (accurate, expensive),
//   scheme B — periodic at a 6x interval (cheap, misses the violation),
//   scheme C — Volley's dynamic sampling (cheap AND detects).
// The paper's Chart (a)-(c) shows exactly this: B's gap swallows the state
// violation while C densifies its sampling as the violation approaches.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "tasks/network_task.h"

namespace volley {
namespace {

void run() {
  NetworkWorkloadOptions options;
  options.netflow.vms = 1;
  options.netflow.ticks = 2880;
  options.netflow.ticks_per_day = 2880;
  options.netflow.diurnal_phase = 1440;
  options.netflow.mean_flows_per_tick = 60.0;
  options.netflow.seed = 71;
  options.attacks_per_vm = 0;
  NetworkWorkload workload(options);
  auto traffic = workload.generate_traffic();
  auto& vm = traffic[0];

  // A slow-ramp attack whose above-threshold window is narrower than
  // scheme B's sampling gap: B misses it, while the ramp's growing deltas
  // warn the likelihood estimator early enough for C to densify in time.
  DdosEpisode attack;
  attack.start = 2001;
  attack.ramp = 12;
  attack.plateau = 2;
  attack.decay = 1;
  attack.peak_syn_rate = 3000.0;
  Rng rng(73);
  inject_ddos(vm, attack, rng);

  // k = 0.2%: the threshold lands high on the attack ramp (~2500), so only
  // ~5 ticks violate — the paper's "short violation between samples".
  auto task = NetworkWorkload::make_task(std::move(vm), 0.2, 0.01);
  task.spec.max_interval = 12;
  const TimeSeries& rho = task.traffic.rho;

  bench::print_header(
      "Figure 1 — motivating example (DDoS traffic difference)",
      "A detects but is expensive; B cheap but misses the violation; "
      "C (dynamic) cheap and detects");
  std::printf("threshold (k=0.2%%): %.1f, trace: %lld ticks of 15 s\n\n",
              task.threshold, static_cast<long long>(rho.ticks()));

  const TimeSeries arr[] = {rho};
  const auto a = run_periodic(arr, task.threshold, 1);
  const auto b = run_periodic(arr, task.threshold, 8);
  RunOptions copt;
  copt.record_ops = true;
  const auto c = run_volley_single(task.spec, rho, copt);

  bench::print_row({"scheme", "ops", "ratio", "episodes", "detected"});
  bench::print_row({"A periodic(Id)", std::to_string(a.total_ops()),
                    bench::fmt(a.sampling_ratio(), 2),
                    std::to_string(a.true_episodes),
                    std::to_string(a.detected_episodes)});
  bench::print_row({"B periodic(8Id)", std::to_string(b.total_ops()),
                    bench::fmt(b.sampling_ratio(), 2),
                    std::to_string(b.true_episodes),
                    std::to_string(b.detected_episodes)});
  bench::print_row({"C Volley", std::to_string(c.total_ops()),
                    bench::fmt(c.sampling_ratio(), 2),
                    std::to_string(c.true_episodes),
                    std::to_string(c.detected_episodes)});

  // Trace excerpt around the attack with C's sampling marks.
  std::printf("\ntrace excerpt around the attack (value | C sampled?):\n");
  std::vector<char> sampled(static_cast<std::size_t>(rho.ticks()), 0);
  for (Tick t : c.op_ticks[0]) sampled[static_cast<std::size_t>(t)] = 1;
  for (Tick t = attack.start - 12; t < attack.start + attack.length() + 6;
       ++t) {
    const auto i = static_cast<std::size_t>(t);
    std::printf("  t=%5lld  rho=%8.1f  %s%s\n", static_cast<long long>(t),
                rho[i], sampled[i] ? "sampled" : "   -   ",
                rho[i] > task.threshold ? "  << VIOLATION" : "");
  }
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
