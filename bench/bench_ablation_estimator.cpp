// Ablation — Chebyshev bound vs Gaussian-assumption estimator.
// The paper argues for the distribution-free Chebyshev bound: it is loose,
// which makes the sampler conservative; assuming normal deltas yields much
// smaller beta estimates, hence longer intervals (more savings) but a real
// mis-detection risk when the delta distribution is heavier-tailed than
// normal (which bursty traffic is). Also sweeps the statistics restart
// window (the paper restarts at n > 1000).
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "tasks/network_task.h"

namespace volley {
namespace {

std::vector<VmTraffic> make_traffic() {
  NetworkWorkloadOptions options;
  options.netflow.vms = 8;
  options.netflow.ticks = 11520;
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 2880;
  options.netflow.diurnal_depth = 0.96;
  options.netflow.mean_flows_per_tick = 10.0;
  options.netflow.off_rate = 1.0 / 1200.0;
  options.netflow.on_rate = 1.0 / 1200.0;
  options.netflow.off_floor = 0.005;
  options.netflow.seed = 151;
  options.attack_prototype.peak_syn_rate = 2500.0;
  options.attacks_per_vm = 3;
  options.seed = 153;
  return NetworkWorkload(options).generate_traffic();
}

struct CellResult {
  double ratio{0};
  double miss{0};
};

CellResult run_cell(const std::vector<VmTraffic>& traffic,
                    ViolationLikelihoodEstimator::Bound bound,
                    std::int64_t stats_window, double err) {
  CellResult cell;
  std::int64_t n = 0;
  for (const auto& vm : traffic) {
    VmTraffic copy;
    copy.rho = vm.rho;
    copy.in_packets = vm.in_packets;
    auto task = NetworkWorkload::make_task(std::move(copy), 0.5, err);
    task.spec.max_interval = 40;
    task.spec.estimator.bound = bound;
    task.spec.estimator.stats_window = stats_window;
    const auto r = run_volley_single(task.spec, task.traffic.rho);
    cell.ratio += r.sampling_ratio();
    cell.miss += r.episode_miss_rate();
    ++n;
  }
  cell.ratio /= static_cast<double>(n);
  cell.miss /= static_cast<double>(n);
  return cell;
}

void run() {
  const auto traffic = make_traffic();

  bench::print_header(
      "Ablation — Chebyshev vs Gaussian likelihood bound; stats window",
      "Chebyshev (paper's choice) is conservative: higher ratio, miss rate "
      "within err; Gaussian saves more but can overshoot the allowance");

  bench::print_row({"estimator/err", "ratio", "miss", "err target"});
  for (double err : {0.002, 0.01, 0.032}) {
    const auto cheb = run_cell(
        traffic, ViolationLikelihoodEstimator::Bound::kChebyshev, 240, err);
    const auto gauss = run_cell(
        traffic, ViolationLikelihoodEstimator::Bound::kGaussian, 240, err);
    bench::print_row({"chebyshev", bench::fmt(cheb.ratio, 3),
                      bench::fmt_pct(cheb.miss, 2), bench::fmt(err, 3)});
    bench::print_row({"gaussian", bench::fmt(gauss.ratio, 3),
                      bench::fmt_pct(gauss.miss, 2), bench::fmt(err, 3)});
  }

  std::printf("\nstatistics restart window (Chebyshev, err=0.01; paper "
              "restarts at n > 1000):\n");
  bench::print_row({"window", "ratio", "miss"});
  for (std::int64_t window : {60, 240, 1000, 4000}) {
    const auto cell = run_cell(
        traffic, ViolationLikelihoodEstimator::Bound::kChebyshev, window,
        0.01);
    bench::print_row({std::to_string(window), bench::fmt(cell.ratio, 3),
                      bench::fmt_pct(cell.miss, 2)});
  }
  std::printf("\n(short windows adapt to regime switches -> more savings on "
              "session-structured traffic; the paper's 1000 suits slowly "
              "varying loads)\n");
}

}  // namespace
}  // namespace volley

int main() {
  volley::run();
  return 0;
}
